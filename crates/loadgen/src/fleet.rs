//! Multi-tenant **fleet** simulation: the catalog's sessions replayed
//! under contention instead of one at a time on an idle WAN.
//!
//! [`SessionReplay`](crate::SessionReplay) answers "how wrong is the
//! closed form about *one* session on a traced network?". A shared
//! facility never runs one session: overlapping campaigns split the WAN
//! and queue for DTN transfer slots, so the idle-WAN decision can be
//! wrong in a way no single-session replay reveals. [`FleetSim`] models
//! exactly that:
//!
//! * **Arrivals** — `sessions` sessions drawn from the scenario list with
//!   seeded Poisson arrivals. The offered load `ℓ` (in Erlangs: the
//!   target mean number of concurrent movements) sets the arrival rate
//!   `λ = ℓ / E[solo movement]`; inter-arrival gaps are `Exp(λ)` samples
//!   from a position-derived SplitMix64 stream ([`SeedSequence`], the
//!   same scheme as the frontier's α-jitter), so parallel and sequential
//!   runs — and repeated runs at the same seed — are byte-identical.
//!   Scenario assignment is a seeded block shuffle: every consecutive
//!   block of `catalog` arrivals covers each scenario exactly once, in a
//!   per-block Fisher–Yates order.
//! * **DTN slot queue** — at most [`FleetConfig::slots`] sessions move
//!   concurrently. Waiting sessions are admitted by the configured
//!   [`AdmissionPolicy`]: FIFO (arrival order), fair-share (the scenario
//!   with the fewest admissions so far goes first), or priority (lowest
//!   latency [`Tier`] first).
//! * **WAN sharing** — each admitted session's private path is its solo
//!   replay trace (the scenario's `α·Bw/θ` base reshaped by the cell's
//!   [`TraceShape`], exactly as `SessionReplay` builds it); on top of
//!   that, all concurrent raw demands are squeezed through a shared
//!   backbone of capacity [`FleetConfig::wan`] by max-min fair
//!   progressive filling ([`progressive_fill`], the same arithmetic as
//!   `sss-netsim`'s `FluidSimulator`). A session that is never clipped
//!   below its solo rate experiences *literally* the single-session
//!   replay: its movement runs through the same
//!   [`EventStreamingPipeline`] call on the same trace, which is what
//!   makes a fleet of one bit-identical to [`SessionReplay`].
//! * **Fidelity** — the allocation integrator is fluid (event-driven,
//!   analytic between rate changes); each session's *reported* movement
//!   then replays its granted piecewise-constant allocation through the
//!   movement pipeline at [`FleetConfig::fidelity`], so `Fidelity::Exact`
//!   provides independent per-frame spot-checks of the fluid numbers via
//!   the same differential harness the single-session replay uses.
//!
//! The verdict layer comes from `sss-core`'s contention module: each
//! session's realized `T_pct` (queue wait + contended movement + remote
//! compute) is re-judged by [`contended_decision`], a **mispredict**
//! being an idle-WAN `RemoteStream` verdict that contention pushed past
//! `T_local`. [`FleetReport`] aggregates per-scenario mispredict rates
//! and the slowdown distribution (P50/P90/P99 via `sss-stats`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use sss_core::{
    contended_decision, decide_batch, CompletionModel, ContentionSummary, Decision, DecisionReport,
    Scenario, Tier,
};
use sss_exec::{SeedSequence, ThreadPool};
use sss_iosim::{EventStreamingPipeline, FrameSource, WanProfile};
use sss_netsim::{progressive_fill, WaterFiller, WaterFlowId};
use sss_report::{CsvWriter, Table};
use sss_sim::{BandwidthTrace, EventQueue, Fidelity, Seconds, TraceShape};
use sss_stats::Ecdf;
use sss_units::{Bytes, Rate, TimeDelta};

/// Cadence of the near-instant production burst (seconds per frame) —
/// the same constant the single-session replay uses, so a fleet of one
/// constructs an identical [`FrameSource`].
const BURST_PERIOD_S: f64 = 1e-9;

/// Who gets the next free DTN slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// Earliest arrival first.
    Fifo,
    /// The waiting session whose scenario has the fewest admissions so
    /// far goes first (ties broken by arrival order) — no tenant starves.
    FairShare,
    /// Lowest latency tier first (real-time before near-real-time before
    /// quasi-real-time), ties broken by arrival order.
    Priority,
}

impl AdmissionPolicy {
    /// Every policy, in reporting order.
    pub const ALL: [AdmissionPolicy; 3] = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::FairShare,
        AdmissionPolicy::Priority,
    ];

    /// The policy's lowercase label (also the CLI/HTTP spelling).
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::FairShare => "fair-share",
            AdmissionPolicy::Priority => "priority",
        }
    }

    /// Parse a lowercase label back into a policy (`"fair"` is accepted
    /// as shorthand for `"fair-share"`).
    pub fn parse(s: &str) -> Result<AdmissionPolicy, String> {
        match s {
            "fifo" => Ok(AdmissionPolicy::Fifo),
            "fair-share" | "fair" => Ok(AdmissionPolicy::FairShare),
            "priority" => Ok(AdmissionPolicy::Priority),
            other => Err(format!(
                "unknown admission policy {other:?}; known policies: fifo, fair-share, priority"
            )),
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// Serialized as the lowercase label so the wire form, the CLI `--policy`
// vocabulary and the CSV column all share one spelling.
impl Serialize for AdmissionPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for AdmissionPolicy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => AdmissionPolicy::parse(s).map_err(serde::Error::custom),
            other => Err(serde::Error::custom(format!(
                "expected an admission-policy string, got {other:?}"
            ))),
        }
    }
}

/// Which allocation integrator advances the fleet.
///
/// Both engines implement the same event-driven fluid semantics —
/// admissions, max-min fair WAN shares, solo-trace breakpoints, drains —
/// and are held together by a differential test. They differ only in
/// per-event cost: the reference loop re-runs [`progressive_fill`] over
/// every active flow at every event (O(k²) each), while the incremental
/// engine re-levels a [`WaterFiller`] in O(log k) and pops the next
/// event from a calendar instead of scanning all flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetEngine {
    /// Incremental water-filling allocator plus breakpoint calendar —
    /// the default, and the only path that scales to thousands of
    /// concurrent sessions.
    Incremental,
    /// The original per-event full recomputation. Kept as the semantic
    /// oracle and as the `fleet_scaling` bench baseline.
    Reference,
}

impl FleetEngine {
    /// Every engine, in reporting order.
    pub const ALL: [FleetEngine; 2] = [FleetEngine::Incremental, FleetEngine::Reference];

    /// The engine's lowercase label (also the CLI/HTTP spelling).
    pub fn label(&self) -> &'static str {
        match self {
            FleetEngine::Incremental => "incremental",
            FleetEngine::Reference => "reference",
        }
    }

    /// Parse a lowercase label back into an engine.
    pub fn parse(s: &str) -> Result<FleetEngine, String> {
        match s {
            "incremental" => Ok(FleetEngine::Incremental),
            "reference" => Ok(FleetEngine::Reference),
            other => Err(format!(
                "unknown fleet engine {other:?}; known engines: incremental, reference"
            )),
        }
    }
}

impl std::fmt::Display for FleetEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for FleetEngine {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for FleetEngine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => FleetEngine::parse(s).map_err(serde::Error::custom),
            other => Err(serde::Error::custom(format!(
                "expected a fleet-engine string, got {other:?}"
            ))),
        }
    }
}

/// Serde default: requests that predate the engine knob mean the
/// production path.
fn default_engine() -> FleetEngine {
    FleetEngine::Incremental
}

/// How the fleet exercises the scenario mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Sessions drawn from the catalog (arrivals). A zero offered load
    /// yields no arrivals regardless of this count.
    pub sessions: u32,
    /// Offered load in Erlangs: the target mean number of concurrent
    /// movements an unbounded facility would sustain.
    pub load: f64,
    /// The WAN trace shape every session's private path experiences.
    pub shape: TraceShape,
    /// Who gets the next free DTN slot.
    pub policy: AdmissionPolicy,
    /// Concurrent DTN transfer slots (admitted sessions moving at once).
    pub slots: u32,
    /// Shared WAN backbone capacity the admitted raw demands are
    /// max-min-fair squeezed through.
    pub wan: Rate,
    /// Frames each session's data unit is split into for the movement
    /// pipeline (the single-session replay's knob).
    pub frames: u32,
    /// Master seed; arrival gaps, scenario shuffles and per-session trace
    /// seeds all derive from it by position.
    pub seed: u64,
    /// Movement integrator for the reported per-session completions.
    pub fidelity: Fidelity,
    /// Allocation integrator advancing admissions, shares and drains.
    #[serde(default = "default_engine")]
    pub engine: FleetEngine,
}

impl FleetConfig {
    /// The standard fleet cell: 52 sessions (4 full catalog blocks) at
    /// load 4 through 4 DTN slots and a 100 Gbps backbone.
    pub fn standard(seed: u64) -> Self {
        FleetConfig {
            sessions: 52,
            load: 4.0,
            shape: TraceShape::Steady,
            policy: AdmissionPolicy::Fifo,
            slots: 4,
            wan: Rate::from_gbps(100.0),
            frames: 16,
            seed,
            fidelity: Fidelity::Fluid,
            engine: FleetEngine::Incremental,
        }
    }

    /// Fast settings for interactive use, tests and `SSS_QUICK` runs.
    pub fn quick(seed: u64) -> Self {
        FleetConfig {
            sessions: 26,
            ..Self::standard(seed)
        }
    }

    /// The same configuration with a different movement [`Fidelity`].
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// The same configuration with a different trace shape.
    pub fn with_shape(mut self, shape: TraceShape) -> Self {
        self.shape = shape;
        self
    }

    /// The same configuration with a different admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The same configuration with a different offered load.
    pub fn with_load(mut self, load: f64) -> Self {
        self.load = load;
        self
    }

    /// The same configuration with a different allocation engine.
    pub fn with_engine(mut self, engine: FleetEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Validate the knobs the engine would otherwise panic on.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.load.is_finite() && self.load >= 0.0) {
            return Err(format!(
                "offered load must be finite and >= 0, got {}",
                self.load
            ));
        }
        if self.sessions > 10_000 {
            return Err(format!(
                "sessions {} exceeds the fleet cap of 10000",
                self.sessions
            ));
        }
        if self.slots == 0 || self.slots > 4_096 {
            return Err(format!("need 1 <= slots <= 4096, got {}", self.slots));
        }
        let wan = self.wan.as_bytes_per_sec();
        if !(wan.is_finite() && wan > 0.0) {
            return Err(format!(
                "the shared WAN capacity must be positive and finite, got {}",
                self.wan
            ));
        }
        if self.frames == 0 || self.frames > 65_536 {
            return Err(format!(
                "frames {} outside the replay range 1..=65536",
                self.frames
            ));
        }
        Ok(())
    }
}

/// One session's fleet outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Arrival index (0-based).
    pub session: u32,
    /// The scenario this session ran.
    pub scenario_id: String,
    /// Poisson arrival instant, seconds.
    pub arrival_s: f64,
    /// Time spent queued for a DTN slot, seconds.
    pub wait_s: f64,
    /// Contended movement time (admission → last byte), seconds, at the
    /// configured fidelity.
    pub movement_s: f64,
    /// Absolute completion of the whole remote path: arrival + wait +
    /// movement + remote compute, seconds.
    pub completion_s: f64,
    /// Whether contention touched this session at all (queued, or
    /// clipped below its solo rate at any instant).
    pub contended: bool,
    /// The idle-WAN closed form's `T_pct`, seconds.
    pub model_t_pct_s: f64,
    /// Realized `T_pct`: wait + movement + remote compute, seconds.
    pub realized_t_pct_s: f64,
    /// `realized / model` on `T_pct` (≥ 1 up to integrator tolerance).
    pub slowdown: f64,
    /// The idle-WAN verdict.
    pub model_decision: Decision,
    /// The verdict re-judged with the realized `T_pct`.
    pub realized_decision: Decision,
    /// Whether contention flipped the verdict.
    pub mispredict: bool,
}

/// One scenario's contention aggregates within a fleet cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioContention {
    /// The scenario summarized.
    pub scenario_id: String,
    /// Mispredict and slowdown aggregates over its sessions.
    pub summary: ContentionSummary,
}

/// Everything one fleet cell (load × shape × policy) learned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Offered load of the cell, Erlangs.
    pub load: f64,
    /// Trace shape of every session's private path.
    pub shape: TraceShape,
    /// Admission policy of the DTN slot queue.
    pub policy: AdmissionPolicy,
    /// DTN slots.
    pub slots: u32,
    /// Shared backbone capacity, Gbps.
    pub wan_gbps: f64,
    /// One record per session, in arrival order.
    pub records: Vec<FleetRecord>,
    /// Per-scenario aggregates (scenarios with at least one session),
    /// in catalog order.
    pub scenarios: Vec<ScenarioContention>,
    /// Whole-cell mispredict/slowdown aggregates.
    pub overall: ContentionSummary,
    /// Median slowdown.
    pub slowdown_p50: f64,
    /// 90th-percentile slowdown.
    pub slowdown_p90: f64,
    /// 99th-percentile slowdown.
    pub slowdown_p99: f64,
    /// When the last session's remote path completed, seconds (0 for an
    /// empty fleet).
    pub makespan_s: f64,
    /// Largest number of concurrently admitted sessions observed —
    /// bounded by [`FleetConfig::slots`] by construction.
    pub peak_active: u32,
    /// Allocation-integrator events processed (arrivals, admissions,
    /// breakpoints, drains, clip flips) — the denominator of the scaling
    /// bench's events/sec.
    #[serde(default)]
    pub events: u64,
}

/// A scenario mix plus the fleet configuration to run it under.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSim {
    scenarios: Vec<Scenario>,
    config: FleetConfig,
}

/// One planned arrival.
struct Planned {
    scenario_idx: usize,
    arrival_s: f64,
    trace_seed: u64,
}

/// A session's state through the allocation integrator.
struct SessionState {
    scenario_idx: usize,
    arrival_s: f64,
    theta: f64,
    s_bytes: f64,
    base: Rate,
    trace: BandwidthTrace,
    start_s: f64,
    /// Elapsed time since admission — the session's private trace clock.
    /// Kept directly (and snapped onto breakpoints verbatim) instead of
    /// re-derived as `t - start_s`, whose rounding could land just below
    /// a breakpoint and stall the integrator there.
    rel_s: f64,
    wait_s: f64,
    remaining: f64,
    clipped: bool,
    /// Granted allocation as `(seconds since admission, deflated rate)`
    /// pieces — the session's contention-adjusted trace.
    pieces: Vec<(f64, f64)>,
    admitted: bool,
    done: bool,
}

/// Append an allocation piece, merging bit-equal consecutive rates so an
/// unclipped session's pieces reproduce its solo trace segments exactly.
fn push_piece(pieces: &mut Vec<(f64, f64)>, rel_t: f64, rate: f64) {
    if let Some(last) = pieces.last_mut() {
        if rel_t <= last.0 {
            // A zero-length segment: the later rate wins.
            last.1 = rate;
            return;
        }
        if rate.to_bits() == last.1.to_bits() {
            return;
        }
    }
    pieces.push((rel_t, rate));
}

/// A uniform in (0, 1) from 53 high bits of a SplitMix64 output.
fn unit_uniform(bits: u64) -> f64 {
    ((bits >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn block_permutation(n: usize, seq: SeedSequence) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for j in (1..n).rev() {
        let pick = (seq.seed(j as u64) % (j as u64 + 1)) as usize;
        order.swap(j, pick);
    }
    order
}

/// Admission rank of a latency tier: lower moves first under
/// [`AdmissionPolicy::Priority`].
fn tier_rank(tier: Tier) -> u8 {
    match tier {
        Tier::RealTime => 0,
        Tier::NearRealTime => 1,
        Tier::QuasiRealTime => 2,
        Tier::Offline => 3,
    }
}

/// The DTN slot queue, policy-specialized so an admission is O(log n)
/// (or O(catalog) for fair-share) instead of the reference loop's O(n)
/// scan plus `Vec::remove` shift. Each variant pops exactly the session
/// [`FleetSim::pick`] would select — a differential test holds the two
/// to the same order under every policy.
enum AdmissionQueue {
    /// Arrival order: push back, pop front.
    Fifo(VecDeque<usize>),
    /// One FIFO lane per scenario; a pop takes the head of the
    /// least-admitted scenario, earliest arrival breaking ties.
    FairShare(Vec<VecDeque<usize>>),
    /// Min-heap on (tier rank, arrival index).
    Priority(BinaryHeap<Reverse<(u8, usize)>>),
}

impl AdmissionQueue {
    fn new(policy: AdmissionPolicy, catalog: usize) -> Self {
        match policy {
            AdmissionPolicy::Fifo => AdmissionQueue::Fifo(VecDeque::new()),
            AdmissionPolicy::FairShare => AdmissionQueue::FairShare(vec![VecDeque::new(); catalog]),
            AdmissionPolicy::Priority => AdmissionQueue::Priority(BinaryHeap::new()),
        }
    }

    /// Enqueue a waiting session. Sessions are pushed in arrival order,
    /// so within any lane the session index doubles as the arrival key.
    fn push(&mut self, session: usize, scenario_idx: usize, rank: u8) {
        match self {
            AdmissionQueue::Fifo(q) => q.push_back(session),
            AdmissionQueue::FairShare(lanes) => lanes[scenario_idx].push_back(session),
            AdmissionQueue::Priority(heap) => heap.push(Reverse((rank, session))),
        }
    }

    /// The next admission under the policy, given per-scenario admission
    /// counts so far.
    fn pop(&mut self, admitted: &[usize]) -> Option<usize> {
        match self {
            AdmissionQueue::Fifo(q) => q.pop_front(),
            AdmissionQueue::FairShare(lanes) => {
                // (admitted count, head arrival) lexicographic minimum —
                // the earliest-arrived head among least-admitted
                // scenarios, which is the session the reference scan's
                // strictly-less comparison lands on.
                let mut best: Option<(usize, usize, usize)> = None;
                for (s, lane) in lanes.iter().enumerate() {
                    let Some(&head) = lane.front() else { continue };
                    match best {
                        Some((c, h, _)) if (c, h) <= (admitted[s], head) => {}
                        _ => best = Some((admitted[s], head, s)),
                    }
                }
                lanes[best?.2].pop_front()
            }
            AdmissionQueue::Priority(heap) => heap.pop().map(|Reverse((_, i))| i),
        }
    }
}

/// A calendar entry for the incremental engine.
enum FleetEvent {
    /// The session arrives and joins the admission queue.
    Arrival(usize),
    /// An admitted session's solo trace switches segments. The trace
    /// clock advances with wall time whether the session is clipped or
    /// not, so a breakpoint scheduled at admission can only be orphaned
    /// by the session draining first — which the `done` flag detects.
    Breakpoint(usize),
    /// An unclipped session runs dry at its solo rate; stale once the
    /// session's epoch moved past the recorded one.
    Drain(usize, u64),
}

/// Per-session scratch for the incremental engine, indexed like the
/// `SessionState` vector.
struct Lane {
    /// The session's live flow in the water-filler (admitted, not done).
    flow: Option<WaterFlowId>,
    /// Whether the flow sat above the water level at the last resolution.
    clipped: bool,
    /// Solo rate of the current trace segment — the deflated grant while
    /// unclipped; the WAN demand is `theta` times this.
    solo: f64,
    /// Trace time of the next segment switch, if any.
    next_break: Option<f64>,
    /// Wall-clock instant the anchors below were last materialized.
    t_anchor: f64,
    /// Deflated bytes remaining at the anchor (governs unclipped drains).
    rem_anchor: f64,
    /// Drain key in water-volume space: with `v(t) = ∫ level dt`, a
    /// continuously-clipped session drains when `v` reaches
    /// `d = v(t₀) + θ·rem(t₀)`, a constant — so the drain heap never
    /// re-sorts while the level moves.
    d_key: f64,
    /// Bumped on every state transition; calendar and heap entries carry
    /// the epoch they were scheduled under and are dropped when stale.
    epoch: u64,
}

/// Remove `i` from the clipped-set (swap-remove with position fix-up);
/// no-op when absent.
fn leave_clipped(set: &mut Vec<usize>, pos: &mut [usize], i: usize) {
    let p = pos[i];
    if p == usize::MAX {
        return;
    }
    set.swap_remove(p);
    if p < set.len() {
        pos[set[p]] = p;
    }
    pos[i] = usize::MAX;
}

impl FleetSim {
    /// A fleet over an explicit scenario mix.
    ///
    /// # Errors
    /// Fails on an invalid [`FleetConfig`] or an empty scenario list —
    /// `/fleet` turns this into a 400 instead of panicking the
    /// connection.
    pub fn new(scenarios: Vec<Scenario>, config: FleetConfig) -> Result<Self, String> {
        config.validate()?;
        if scenarios.is_empty() {
            return Err("a fleet needs at least one scenario in the mix".into());
        }
        Ok(FleetSim { scenarios, config })
    }

    /// A fleet drawing from every scenario in [`Scenario::registry`].
    ///
    /// # Errors
    /// Fails on an invalid [`FleetConfig`].
    pub fn bundled(config: FleetConfig) -> Result<Self, String> {
        Self::new(Scenario::all(), config)
    }

    /// The scenario mix sessions are drawn from.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Seeded Poisson arrival plan: exponential gaps at
    /// `λ = load / E[solo movement]`, scenarios assigned by seeded block
    /// shuffle, per-session trace seeds position-derived so session `k`'s
    /// trace seed equals the single-session replay's cell-`k` seed.
    fn plan(&self) -> Vec<Planned> {
        if self.config.load <= 0.0 || self.config.sessions == 0 {
            return Vec::new();
        }
        let catalog_n = self.scenarios.len();
        let mean_movement: f64 = self
            .scenarios
            .iter()
            .map(|s| {
                let p = &s.params;
                p.theta.value() * p.data_unit.as_b() / p.effective_rate().as_bytes_per_sec()
            })
            .sum::<f64>()
            / catalog_n as f64;
        let lambda = self.config.load / mean_movement;

        let trace_seeds = SeedSequence::new(self.config.seed);
        let gap_stream = SeedSequence::new(self.config.seed).child(1);
        let shuffle_root = SeedSequence::new(self.config.seed).child(2);

        let mut planned = Vec::with_capacity(self.config.sessions as usize);
        let mut t = 0.0f64;
        let mut order = Vec::new();
        for k in 0..self.config.sessions as usize {
            if k % catalog_n == 0 {
                order = block_permutation(catalog_n, shuffle_root.child((k / catalog_n) as u64));
            }
            let u = unit_uniform(gap_stream.seed(k as u64));
            t += -u.ln() / lambda;
            planned.push(Planned {
                scenario_idx: order[k % catalog_n],
                arrival_s: t,
                trace_seed: trace_seeds.seed(k as u64),
            });
        }
        planned
    }

    /// Which waiting session the policy admits next: an index into
    /// `queued` (itself kept in arrival order).
    fn pick(&self, queued: &[usize], states: &[SessionState], admitted: &[usize]) -> usize {
        match self.config.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::FairShare => {
                let mut best = 0usize;
                for (pos, &i) in queued.iter().enumerate().skip(1) {
                    if admitted[states[i].scenario_idx]
                        < admitted[states[queued[best]].scenario_idx]
                    {
                        best = pos;
                    }
                }
                best
            }
            AdmissionPolicy::Priority => {
                let mut best = 0usize;
                for (pos, &i) in queued.iter().enumerate().skip(1) {
                    let rank = tier_rank(self.scenarios[states[i].scenario_idx].tier);
                    if rank < tier_rank(self.scenarios[states[queued[best]].scenario_idx].tier) {
                        best = pos;
                    }
                }
                best
            }
        }
    }

    /// Fresh per-session integrator state for a planned arrival schedule
    /// — shared verbatim by both engines so their sessions start from
    /// identical traces, clocks and byte counts.
    fn session_states(&self, plan: &[Planned]) -> Vec<SessionState> {
        plan.iter()
            .map(|p| {
                let s = &self.scenarios[p.scenario_idx];
                let params = &s.params;
                let s_bytes = params.data_unit.as_b();
                let theta = params.theta.value();
                let effective = params.effective_rate().as_bytes_per_sec();
                // The session's private path is exactly the solo replay
                // trace: base α·Bw/θ, horizon θ·S/(α·Bw) (module docs).
                let base = Rate::from_bytes_per_sec(effective / theta);
                let horizon = theta * s_bytes / effective;
                let trace = self.config.shape.build(base, horizon, p.trace_seed);
                SessionState {
                    scenario_idx: p.scenario_idx,
                    arrival_s: p.arrival_s,
                    theta,
                    s_bytes,
                    base,
                    trace,
                    start_s: 0.0,
                    rel_s: 0.0,
                    wait_s: 0.0,
                    remaining: s_bytes,
                    clipped: false,
                    pieces: Vec::new(),
                    admitted: false,
                    done: false,
                }
            })
            .collect()
    }

    /// The fluid allocation integrator: admissions, max-min fair WAN
    /// shares, queue waits and each session's granted piecewise-constant
    /// allocation. Event-driven and analytic between events (arrivals,
    /// admissions, solo-trace breakpoints, drains), in the style of
    /// `sss-netsim`'s `FluidSimulator`. Returns the advanced states, the
    /// peak concurrency and the number of integrator events processed.
    fn integrate(&self, plan: &[Planned]) -> (Vec<SessionState>, u32, u64) {
        match self.config.engine {
            FleetEngine::Incremental => self.integrate_incremental(plan),
            FleetEngine::Reference => self.integrate_reference(plan),
        }
    }

    /// The seed allocation loop: every event re-derives all solo rates,
    /// re-runs [`progressive_fill`] over every active flow and rescans
    /// all drains and breakpoints — O(k²) per event. Byte-faithful to
    /// the original integrator; the oracle the incremental engine is
    /// differentially tested against, and the `fleet_scaling` baseline.
    fn integrate_reference(&self, plan: &[Planned]) -> (Vec<SessionState>, u32, u64) {
        let mut states = self.session_states(plan);
        let n = states.len();
        let wan_bps = self.config.wan.as_bytes_per_sec();
        let slots = self.config.slots as usize;
        let mut admitted_per_scenario = vec![0usize; self.scenarios.len()];
        let mut queued: Vec<usize> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut next_arrival = 0usize;
        let mut peak_active = 0u32;
        let mut t = 0.0f64;
        let mut events = 0u64;

        loop {
            events += 1;
            while next_arrival < n && states[next_arrival].arrival_s <= t {
                queued.push(next_arrival);
                next_arrival += 1;
            }
            while active.len() < slots && !queued.is_empty() {
                let pos = self.pick(&queued, &states, &admitted_per_scenario);
                let i = queued.remove(pos);
                states[i].admitted = true;
                states[i].start_s = t;
                states[i].wait_s = t - states[i].arrival_s;
                if states[i].wait_s > 0.0 {
                    states[i].clipped = true;
                }
                admitted_per_scenario[states[i].scenario_idx] += 1;
                active.push(i);
            }
            peak_active = peak_active.max(active.len() as u32);
            if active.is_empty() {
                if next_arrival < n {
                    t = states[next_arrival].arrival_s;
                    continue;
                }
                break;
            }

            // Max-min fair shares of the backbone among the raw demands
            // θ·solo(rel); an unclipped session's deflated grant is its
            // solo rate *verbatim* (see `progressive_fill`), which keeps
            // its recorded pieces bit-equal to its solo trace.
            let solo: Vec<f64> = active
                .iter()
                .map(|&i| states[i].trace.rate_at(states[i].rel_s))
                .collect();
            let caps: Vec<f64> = active
                .iter()
                .zip(&solo)
                .map(|(&i, &r)| states[i].theta * r)
                .collect();
            let shares = progressive_fill(wan_bps, &caps);
            let mut rates = Vec::with_capacity(active.len());
            for j in 0..active.len() {
                let i = active[j];
                if shares[j] < caps[j] {
                    states[i].clipped = true;
                    rates.push(shares[j] / states[i].theta);
                } else {
                    rates.push(solo[j]);
                }
            }
            for (j, &i) in active.iter().enumerate() {
                let rel = states[i].rel_s;
                push_piece(&mut states[i].pieces, rel, rates[j]);
            }

            // Next event as a *delta*: the next arrival, the next
            // solo-trace breakpoint of an active session, or a drain at
            // the current rates. Every candidate is strictly positive
            // (arrivals at or before `t` were consumed above, and
            // `next_change` is strictly beyond `rel_s`), so the step
            // always makes progress; the session owning the winning
            // breakpoint gets its clock *snapped* onto the breakpoint —
            // and the drain comparison mirrors `FluidSimulator::run`, so
            // the defining session lands exactly on zero.
            let d_arrival = if next_arrival < n {
                states[next_arrival].arrival_s - t
            } else {
                f64::INFINITY
            };
            let breaks: Vec<Option<f64>> = active
                .iter()
                .map(|&i| states[i].trace.next_change(states[i].rel_s))
                .collect();
            let d_break = active
                .iter()
                .zip(&breaks)
                .filter_map(|(&i, b)| b.map(|b| b - states[i].rel_s))
                .fold(f64::INFINITY, f64::min);
            let drain = active
                .iter()
                .zip(&rates)
                .filter(|(_, &r)| r > 0.0)
                .map(|(&i, &r)| states[i].remaining / r)
                .fold(f64::INFINITY, f64::min);
            // A zero-rate session always has a future breakpoint (the
            // kernel requires a positive final rate), so `dt` is finite.
            let dt = d_arrival.min(d_break).min(drain);

            for (j, &i) in active.iter().enumerate() {
                let r = rates[j];
                if r > 0.0 && states[i].remaining / r <= dt {
                    states[i].remaining = 0.0;
                    states[i].done = true;
                } else {
                    states[i].remaining = (states[i].remaining - r * dt).max(0.0);
                }
                match breaks[j] {
                    Some(b) if b - states[i].rel_s == dt => states[i].rel_s = b,
                    _ => states[i].rel_s += dt,
                }
            }
            active.retain(|&i| !states[i].done);
            t = if d_arrival == dt {
                states[next_arrival].arrival_s
            } else {
                t + dt
            };
        }
        (states, peak_active, events)
    }

    /// The incremental allocation integrator.
    ///
    /// Three structures replace the reference loop's full rescans:
    ///
    /// * a [`WaterFiller`] holds every active flow's WAN demand and
    ///   re-levels in O(log k) per cap change, arrival or drain, so the
    ///   max-min fair shares are never recomputed from scratch;
    /// * an [`EventQueue`] calendar holds arrivals, per-session trace
    ///   breakpoints and projected unclipped drains, so each step pops
    ///   the winner instead of scanning every active flow;
    /// * clipped drains live in a min-heap keyed in **water-volume
    ///   space**: with `v(t) = ∫ level dt`, a continuously-clipped
    ///   session's remaining hits zero when `v` reaches the constant
    ///   `d = v(t₀) + θ·rem(t₀)` — level changes move every clipped
    ///   drain time at once, but leave the heap order untouched.
    ///
    /// Scratch buffers are reused across events and per-session state is
    /// materialized lazily (only when a session's own status changes), so
    /// the steady-state step allocates nothing. Calendar instants are
    /// stored verbatim and the clock jumps onto them exactly (no `t+dt`
    /// rounding), mirroring the reference loop's snapping; an unclipped
    /// session's recorded pieces carry its solo rates bit-for-bit, which
    /// preserves the fleet-of-one ≡ `SessionReplay` identity.
    fn integrate_incremental(&self, plan: &[Planned]) -> (Vec<SessionState>, u32, u64) {
        let mut states = self.session_states(plan);
        let n = states.len();
        let wan_bps = self.config.wan.as_bytes_per_sec();
        let slots = self.config.slots as usize;
        let catalog = self.scenarios.len();
        let mut admitted_per_scenario = vec![0usize; catalog];
        let mut queue = AdmissionQueue::new(self.config.policy, catalog);

        let mut wf = WaterFiller::new(wan_bps);
        // Live flow handle → session index (slab slots are recycled, so
        // this stays as small as the peak concurrency).
        let mut flow_session: Vec<usize> = Vec::new();
        let mut lanes: Vec<Lane> = (0..n)
            .map(|_| Lane {
                flow: None,
                clipped: false,
                solo: 0.0,
                next_break: None,
                t_anchor: 0.0,
                rem_anchor: 0.0,
                d_key: 0.0,
                epoch: 0,
            })
            .collect();

        let mut calendar: EventQueue<Seconds, FleetEvent> = EventQueue::new();
        for (i, st) in states.iter().enumerate() {
            calendar.schedule(Seconds::new(st.arrival_s), FleetEvent::Arrival(i));
        }
        // Clipped drains: min-heap on (d_key bits, push seq) — both
        // non-negative, so the bit order is the value order and the seq
        // makes ties FIFO like the calendar's.
        let mut clip_heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>> = BinaryHeap::new();
        let mut clip_seq = 0u64;
        // Currently-clipped sessions, for eager piece recording when the
        // level moves; iteration order is irrelevant (pieces are
        // per-session) so swap-remove is fine.
        let mut clipped_set: Vec<usize> = Vec::new();
        let mut clipped_pos: Vec<usize> = vec![usize::MAX; n];
        // Sessions whose own status may have changed this instant.
        let mut touched: Vec<usize> = Vec::new();
        let mut touch_stamp: Vec<u64> = vec![0; n];
        let mut stamp = 0u64;

        let mut active = 0usize;
        let mut peak_active = 0u32;
        let mut t = 0.0f64;
        let mut v = 0.0f64;
        let mut events = 0u64;

        loop {
            // Drop heap entries orphaned by a flip, breakpoint or drain.
            while let Some(&Reverse((_, _, i, epoch))) = clip_heap.peek() {
                if states[i].done || lanes[i].epoch != epoch {
                    clip_heap.pop();
                } else {
                    break;
                }
            }
            let level = wf.level();
            let draining = level > 0.0 && level.is_finite();
            let d_cal = calendar.peek_time().map(|s| s.value() - t);
            // The earliest clipped drain as a delta — the incremental
            // analog of the reference loop's `remaining / rate` scan.
            let d_clip = match clip_heap.peek() {
                Some(&Reverse((bits, _, _, _))) if draining => {
                    Some(((f64::from_bits(bits) - v) / level).max(0.0))
                }
                _ => None,
            };
            let dt = match (d_cal, d_clip) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            // A calendar winner advances the clock onto the scheduled
            // instant *verbatim* — the same no-rounding jump the
            // reference loop makes onto `arrival_s`.
            let at_calendar = d_cal.is_some_and(|a| a <= dt);
            let t_next = match calendar.peek_time() {
                Some(s) if at_calendar => s.value(),
                _ => t + dt,
            };
            let v_pre = v;
            if level.is_finite() {
                v += level * (t_next - t);
            }

            stamp += 1;
            touched.clear();

            // 1. Clipped drains due within this step — compared against
            // the drain delta itself (the `FluidSimulator` idiom), so
            // the defining session lands exactly on its key.
            while let Some(&Reverse((bits, _, i, epoch))) = clip_heap.peek() {
                if states[i].done || lanes[i].epoch != epoch {
                    clip_heap.pop();
                    continue;
                }
                if !draining || (f64::from_bits(bits) - v_pre) / level > dt {
                    break;
                }
                clip_heap.pop();
                states[i].remaining = 0.0;
                states[i].done = true;
                if let Some(flow) = lanes[i].flow.take() {
                    wf.remove(flow);
                }
                lanes[i].epoch += 1;
                active -= 1;
                leave_clipped(&mut clipped_set, &mut clipped_pos, i);
                events += 1;
            }

            // 2. Calendar events scheduled at exactly this instant, in
            // (time, seq) order.
            if at_calendar {
                let now = Seconds::new(t_next);
                while calendar.peek_time() == Some(&now) {
                    let Some((_, event)) = calendar.pop() else {
                        break;
                    };
                    match event {
                        FleetEvent::Arrival(i) => {
                            let rank = tier_rank(self.scenarios[states[i].scenario_idx].tier);
                            queue.push(i, states[i].scenario_idx, rank);
                            events += 1;
                        }
                        FleetEvent::Breakpoint(i) => {
                            if states[i].done {
                                continue;
                            }
                            let (Some(flow), Some(b)) = (lanes[i].flow, lanes[i].next_break) else {
                                continue;
                            };
                            // Materialize remaining over the outgoing
                            // segment, then snap the trace clock onto the
                            // breakpoint verbatim (the reference loop's
                            // rounding guard).
                            let theta = states[i].theta;
                            let rem = if lanes[i].clipped {
                                ((lanes[i].d_key - v) / theta).max(0.0)
                            } else {
                                (lanes[i].rem_anchor - lanes[i].solo * (t_next - lanes[i].t_anchor))
                                    .max(0.0)
                            };
                            states[i].remaining = rem;
                            states[i].rel_s = b;
                            let (solo, next_b) = states[i].trace.segment_at(b);
                            wf.update(flow, theta * solo);
                            let lane = &mut lanes[i];
                            lane.rem_anchor = rem;
                            lane.t_anchor = t_next;
                            lane.solo = solo;
                            lane.next_break = next_b;
                            lane.epoch += 1;
                            if let Some(nb) = next_b {
                                calendar.schedule(
                                    Seconds::new(t_next + (nb - b)),
                                    FleetEvent::Breakpoint(i),
                                );
                            }
                            if touch_stamp[i] != stamp {
                                touch_stamp[i] = stamp;
                                touched.push(i);
                            }
                            events += 1;
                        }
                        FleetEvent::Drain(i, epoch) => {
                            if states[i].done || lanes[i].epoch != epoch {
                                continue;
                            }
                            states[i].remaining = 0.0;
                            states[i].done = true;
                            if let Some(flow) = lanes[i].flow.take() {
                                wf.remove(flow);
                            }
                            lanes[i].epoch += 1;
                            active -= 1;
                            leave_clipped(&mut clipped_set, &mut clipped_pos, i);
                            events += 1;
                        }
                    }
                }
            }

            // 3. Admissions into freed slots.
            while active < slots {
                let Some(i) = queue.pop(&admitted_per_scenario) else {
                    break;
                };
                states[i].admitted = true;
                states[i].start_s = t_next;
                states[i].wait_s = t_next - states[i].arrival_s;
                if states[i].wait_s > 0.0 {
                    states[i].clipped = true;
                }
                admitted_per_scenario[states[i].scenario_idx] += 1;
                active += 1;
                let (solo, next_b) = states[i].trace.segment_at(0.0);
                let flow = wf.insert(states[i].theta * solo);
                if flow.index() >= flow_session.len() {
                    flow_session.resize(flow.index() + 1, usize::MAX);
                }
                flow_session[flow.index()] = i;
                states[i].rel_s = 0.0;
                let lane = &mut lanes[i];
                lane.flow = Some(flow);
                lane.clipped = false;
                lane.solo = solo;
                lane.next_break = next_b;
                lane.t_anchor = t_next;
                lane.rem_anchor = states[i].s_bytes;
                lane.epoch += 1;
                if let Some(b) = next_b {
                    calendar.schedule(Seconds::new(t_next + b), FleetEvent::Breakpoint(i));
                }
                if touch_stamp[i] != stamp {
                    touch_stamp[i] = stamp;
                    touched.push(i);
                }
                events += 1;
            }
            peak_active = peak_active.max(active as u32);

            // 4. Resolution: one re-level covers every mutation above.
            // A flow whose own cap didn't change flips clip status iff
            // the level crossed its cap, so the (old, new] level band
            // plus the touched list is exactly the set of candidates.
            let level_new = wf.level();
            let moved = level_new.to_bits() != level.to_bits();
            if moved {
                let (lo, hi) = if level_new > level {
                    (level, level_new)
                } else {
                    (level_new, level)
                };
                wf.for_caps_in(lo, hi, |f| {
                    let i = flow_session[f.index()];
                    if touch_stamp[i] != stamp {
                        touch_stamp[i] = stamp;
                        touched.push(i);
                    }
                });
            }
            for &i in &touched {
                if states[i].done {
                    continue;
                }
                let Some(flow) = lanes[i].flow else { continue };
                let now_clipped = wf.is_clipped(flow);
                let theta = states[i].theta;
                // Materialize remaining at `t_next` under the dynamics
                // that governed since the anchor, then re-anchor. For
                // sessions whose own event already re-anchored above
                // this is an exact no-op (`t_next - t_anchor == 0`).
                let rem = if lanes[i].clipped {
                    ((lanes[i].d_key - v) / theta).max(0.0)
                } else {
                    (lanes[i].rem_anchor - lanes[i].solo * (t_next - lanes[i].t_anchor)).max(0.0)
                };
                states[i].rel_s += t_next - lanes[i].t_anchor;
                states[i].remaining = rem;
                let lane = &mut lanes[i];
                lane.rem_anchor = rem;
                lane.t_anchor = t_next;
                lane.epoch += 1;
                lane.clipped = now_clipped;
                if now_clipped {
                    states[i].clipped = true;
                    lane.d_key = v + theta * rem;
                    clip_heap.push(Reverse((lane.d_key.to_bits(), clip_seq, i, lane.epoch)));
                    clip_seq += 1;
                    if clipped_pos[i] == usize::MAX {
                        clipped_pos[i] = clipped_set.len();
                        clipped_set.push(i);
                    }
                    let rel = states[i].rel_s;
                    push_piece(&mut states[i].pieces, rel, level_new / theta);
                } else {
                    leave_clipped(&mut clipped_set, &mut clipped_pos, i);
                    if lane.solo > 0.0 {
                        // A zero-rate segment never drains — the kernel
                        // guarantees a positive final rate, so a later
                        // breakpoint always reschedules this.
                        calendar.schedule(
                            Seconds::new(t_next + rem / lanes[i].solo),
                            FleetEvent::Drain(i, lanes[i].epoch),
                        );
                    }
                    let (rel, solo) = (states[i].rel_s, lanes[i].solo);
                    push_piece(&mut states[i].pieces, rel, solo);
                }
            }
            // Level moved: every still-clipped session's grant moved
            // with it — record the new rate at each session's private
            // clock (touched ones already carry it; the bit-equal merge
            // in `push_piece` makes the double push a no-op).
            if moved {
                for &i in &clipped_set {
                    let rel_now = states[i].rel_s + (t_next - lanes[i].t_anchor);
                    let rate = level_new / states[i].theta;
                    push_piece(&mut states[i].pieces, rel_now, rate);
                }
            }

            t = t_next;
        }
        (states, peak_active, events)
    }

    /// One session's reported record: its granted allocation replayed
    /// through the movement pipeline at the configured fidelity. An
    /// uncontended session replays its solo trace through the *same*
    /// pipeline call as `SessionReplay::evaluate_cell` — the structural
    /// guarantee behind the fleet-of-one bit-identity tests.
    fn finalize(
        &self,
        session: u32,
        st: &SessionState,
        model: &DecisionReport,
    ) -> Result<FleetRecord, String> {
        let scenario = &self.scenarios[st.scenario_idx];
        let trace = if !st.clipped {
            // Never queued, never clipped: the granted allocation IS the
            // solo trace — reuse it verbatim for structural bit-identity
            // with the single-session replay.
            st.trace.clone()
        } else {
            let segments: Vec<(f64, Rate)> = st
                .pieces
                .iter()
                .map(|&(rel, r)| (rel, Rate::from_bytes_per_sec(r)))
                .collect();
            BandwidthTrace::from_segments(&segments)
                .map_err(|e| format!("session {session} composed an invalid allocation: {e}"))?
        };
        let source = FrameSource::new(
            self.config.frames,
            Bytes::from_b(st.s_bytes / self.config.frames as f64),
            TimeDelta::from_secs(BURST_PERIOD_S),
        );
        let wan = WanProfile {
            bandwidth: st.base,
            rtt: TimeDelta::ZERO,
            per_message_overhead: TimeDelta::ZERO,
        };
        let movement = EventStreamingPipeline::new(source, wan, trace)
            .run_fidelity(self.config.fidelity)
            .completion
            .as_secs();

        let t_remote = CompletionModel::new(scenario.params).t_remote().as_secs();
        let realized_t_pct = st.wait_s + movement + t_remote;
        let model_t_pct = model.t_pct.as_secs();
        let realized_decision = contended_decision(model, realized_t_pct);
        Ok(FleetRecord {
            session,
            scenario_id: scenario.id.clone(),
            arrival_s: st.arrival_s,
            wait_s: st.wait_s,
            movement_s: movement,
            completion_s: st.start_s + movement + t_remote,
            contended: st.clipped,
            model_t_pct_s: model_t_pct,
            realized_t_pct_s: realized_t_pct,
            slowdown: realized_t_pct / model_t_pct.max(1e-12),
            model_decision: model.decision,
            realized_decision,
            mispredict: realized_decision != model.decision,
        })
    }

    /// Run the fleet on `pool`.
    ///
    /// # Errors
    /// Fails only if a composed allocation trace is rejected by the
    /// kernel's validator — impossible by construction, surfaced instead
    /// of unwrapped.
    pub fn run(&self, pool: &ThreadPool) -> Result<FleetReport, String> {
        self.run_with(Some(pool))
    }

    /// Run on the calling thread. Bit-identical to [`FleetSim::run`]:
    /// the allocation integrator is sequential either way, and the
    /// per-session pipeline replays use position-derived inputs only.
    pub fn run_sequential(&self) -> Result<FleetReport, String> {
        self.run_with(None)
    }

    /// [`FleetSim::run`] with the pool explicit (`None` = calling
    /// thread). All paths return the same bytes.
    pub fn run_with(&self, pool: Option<&ThreadPool>) -> Result<FleetReport, String> {
        let params: Vec<_> = self.scenarios.iter().map(|s| s.params).collect();
        let decisions = decide_batch(&params);

        let plan = self.plan();
        let (states, peak_active, events) = self.integrate(&plan);

        let indices: Vec<u32> = (0..states.len() as u32).collect();
        let eval = |&k: &u32| {
            let st = &states[k as usize];
            self.finalize(k, st, &decisions[st.scenario_idx])
        };
        let results: Vec<Result<FleetRecord, String>> = match pool {
            Some(p) => p.map(&indices, eval),
            None => indices.iter().map(eval).collect(),
        };
        let mut records = Vec::with_capacity(results.len());
        for r in results {
            records.push(r?);
        }

        let scenarios = self
            .scenarios
            .iter()
            .filter_map(|s| {
                let outcomes: Vec<(bool, f64)> = records
                    .iter()
                    .filter(|r| r.scenario_id == s.id)
                    .map(|r| (r.mispredict, r.slowdown))
                    .collect();
                if outcomes.is_empty() {
                    return None;
                }
                Some(ScenarioContention {
                    scenario_id: s.id.clone(),
                    summary: ContentionSummary::from_outcomes(&outcomes),
                })
            })
            .collect();
        let outcomes: Vec<(bool, f64)> =
            records.iter().map(|r| (r.mispredict, r.slowdown)).collect();
        let overall = ContentionSummary::from_outcomes(&outcomes);
        let slowdowns: Vec<f64> = records.iter().map(|r| r.slowdown).collect();
        let (p50, p90, p99) = match Ecdf::from_samples(&slowdowns) {
            Some(ecdf) => (
                ecdf.quantile(0.50),
                ecdf.quantile(0.90),
                ecdf.quantile(0.99),
            ),
            None => (1.0, 1.0, 1.0),
        };
        Ok(FleetReport {
            load: self.config.load,
            shape: self.config.shape,
            policy: self.config.policy,
            slots: self.config.slots,
            wan_gbps: self.config.wan.as_gbps(),
            makespan_s: records.iter().map(|r| r.completion_s).fold(0.0, f64::max),
            records,
            scenarios,
            overall,
            slowdown_p50: p50,
            slowdown_p90: p90,
            slowdown_p99: p99,
            peak_active,
            events,
        })
    }
}

/// One row per session: arrival, wait, contended vs idle-WAN completion,
/// and whether the verdict flipped.
pub fn fleet_table(report: &FleetReport) -> Table {
    let mut table = Table::new([
        "#",
        "scenario",
        "arrival",
        "wait",
        "move",
        "model T_pct",
        "real T_pct",
        "slowdn",
        "model",
        "realized",
        "flip",
    ])
    .with_title(format!(
        "Fleet of {} sessions — load {}, {} trace, {} admission",
        report.records.len(),
        report.load,
        report.shape.label(),
        report.policy.label()
    ));
    for r in &report.records {
        table.row([
            r.session.to_string(),
            r.scenario_id.clone(),
            format!("{:.2}s", r.arrival_s),
            format!("{:.2}s", r.wait_s),
            format!("{:.3}s", r.movement_s),
            format!("{:.3}s", r.model_t_pct_s),
            format!("{:.3}s", r.realized_t_pct_s),
            format!("{:.2}x", r.slowdown),
            format!("{:?}", r.model_decision),
            format!("{:?}", r.realized_decision),
            if r.mispredict { "FLIP" } else { "-" }.to_string(),
        ]);
    }
    table
}

/// One row per scenario: how often contention flips its idle-WAN verdict.
pub fn fleet_scenario_table(report: &FleetReport) -> Table {
    let mut table = Table::new([
        "scenario",
        "sessions",
        "mispredicts",
        "rate%",
        "mean slowdn",
        "max slowdn",
    ])
    .with_title("Per-scenario mispredict rate vs the single-session closed form");
    for s in &report.scenarios {
        table.row([
            s.scenario_id.clone(),
            s.summary.sessions.to_string(),
            s.summary.mispredicts.to_string(),
            format!("{:.1}", s.summary.mispredict_rate * 100.0),
            format!("{:.2}x", s.summary.mean_slowdown),
            format!("{:.2}x", s.summary.max_slowdown),
        ]);
    }
    table
}

/// One row per fleet cell: the contention headline numbers.
pub fn fleet_summary_table(reports: &[FleetReport]) -> Table {
    let mut table = Table::new([
        "load",
        "trace",
        "policy",
        "sessions",
        "peak",
        "mispredict%",
        "P50",
        "P90",
        "P99",
        "makespan",
    ])
    .with_title("Contention across fleet cells");
    for r in reports {
        table.row([
            format!("{}", r.load),
            r.shape.label().to_string(),
            r.policy.label().to_string(),
            r.records.len().to_string(),
            r.peak_active.to_string(),
            format!("{:.1}", r.overall.mispredict_rate * 100.0),
            format!("{:.2}x", r.slowdown_p50),
            format!("{:.2}x", r.slowdown_p90),
            format!("{:.2}x", r.slowdown_p99),
            format!("{:.1}s", r.makespan_s),
        ]);
    }
    table
}

/// The full fleet matrix as CSV: one row per session across the cells.
pub fn fleet_csv(reports: &[FleetReport]) -> CsvWriter {
    let mut csv = CsvWriter::new([
        "load",
        "trace",
        "policy",
        "session",
        "scenario",
        "arrival_s",
        "wait_s",
        "movement_s",
        "completion_s",
        "model_t_pct_s",
        "realized_t_pct_s",
        "slowdown",
        "contended",
        "model_decision",
        "realized_decision",
        "mispredict",
    ]);
    for report in reports {
        for r in &report.records {
            csv.row([
                format!("{}", report.load),
                report.shape.label().to_string(),
                report.policy.label().to_string(),
                r.session.to_string(),
                r.scenario_id.clone(),
                format!("{}", r.arrival_s),
                format!("{}", r.wait_s),
                format!("{}", r.movement_s),
                format!("{}", r.completion_s),
                format!("{}", r.model_t_pct_s),
                format!("{}", r.realized_t_pct_s),
                format!("{}", r.slowdown),
                format!("{}", r.contended),
                format!("{:?}", r.model_decision),
                format!("{:?}", r.realized_decision),
                format!("{}", r.mispredict),
            ]);
        }
    }
    csv
}

/// Per-scenario contention aggregates as CSV: one row per (cell ×
/// scenario) — what `fleet_contention` persists.
pub fn fleet_scenario_csv(reports: &[FleetReport]) -> CsvWriter {
    let mut csv = CsvWriter::new([
        "load",
        "trace",
        "policy",
        "scenario",
        "sessions",
        "mispredicts",
        "mispredict_rate",
        "mean_slowdown",
        "max_slowdown",
        "slowdown_p50",
        "slowdown_p90",
        "slowdown_p99",
    ]);
    for report in reports {
        for s in &report.scenarios {
            csv.row([
                format!("{}", report.load),
                report.shape.label().to_string(),
                report.policy.label().to_string(),
                s.scenario_id.clone(),
                s.summary.sessions.to_string(),
                s.summary.mispredicts.to_string(),
                format!("{}", s.summary.mispredict_rate),
                format!("{}", s.summary.mean_slowdown),
                format!("{}", s.summary.max_slowdown),
                format!("{}", report.slowdown_p50),
                format!("{}", report.slowdown_p90),
                format!("{}", report.slowdown_p99),
            ]);
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReplayConfig, SessionReplay};

    fn solo_config(seed: u64, shape: TraceShape, fidelity: Fidelity) -> FleetConfig {
        FleetConfig {
            sessions: 1,
            load: 1.0,
            shape,
            policy: AdmissionPolicy::Fifo,
            slots: 1,
            // A backbone far above any single demand: never clips.
            wan: Rate::from_gbps(100_000.0),
            frames: 16,
            seed,
            fidelity,
            engine: FleetEngine::Incremental,
        }
    }

    #[test]
    fn zero_load_draws_no_arrivals() {
        let config = FleetConfig::quick(42).with_load(0.0);
        let report = FleetSim::bundled(config).unwrap().run_sequential().unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.makespan_s, 0.0);
        assert_eq!(report.peak_active, 0);
        assert_eq!(report.overall.sessions, 0);
        assert_eq!(report.slowdown_p50, 1.0);
    }

    #[test]
    fn fleet_of_one_is_bit_identical_to_session_replay() {
        // An uncontended fleet of one routes its movement through the
        // same pipeline call on the same trace as SessionReplay, for
        // every shape and both integrators — bit equality, not tolerance.
        let scenario = Scenario::by_id("lcls-coherent-scattering").unwrap();
        for shape in TraceShape::ALL {
            for fidelity in [Fidelity::Exact, Fidelity::Fluid] {
                for engine in FleetEngine::ALL {
                    let config = solo_config(42, shape, fidelity).with_engine(engine);
                    let fleet = FleetSim::new(vec![scenario.clone()], config)
                        .unwrap()
                        .run_sequential()
                        .unwrap();
                    let mut rc = ReplayConfig::quick(42).with_fidelity(fidelity);
                    rc.shapes = vec![shape];
                    let replay = SessionReplay::new(vec![scenario.clone()], rc)
                        .unwrap()
                        .run_sequential();
                    let f = &fleet.records[0];
                    let r = &replay.records[0];
                    assert_eq!(
                        f.wait_s, 0.0,
                        "{shape}/{engine}: a fleet of one never queues"
                    );
                    assert!(!f.contended);
                    assert_eq!(
                        f.movement_s, r.sim_transfer_s,
                        "{shape}/{fidelity}/{engine}: movement must be bit-identical"
                    );
                    assert_eq!(
                        f.realized_t_pct_s, r.sim_t_pct_s,
                        "{shape}/{fidelity}/{engine}: realized T_pct must be bit-identical"
                    );
                    assert_eq!(f.model_t_pct_s, r.model_t_pct_s);
                }
            }
        }
    }

    #[test]
    fn huge_fleet_is_bounded_by_the_admission_queue() {
        let mut config = FleetConfig::quick(7).with_load(32.0);
        config.sessions = 300;
        config.slots = 3;
        let report = FleetSim::bundled(config).unwrap().run_sequential().unwrap();
        assert_eq!(report.records.len(), 300);
        assert!(report.peak_active <= 3, "peak {}", report.peak_active);
        assert!(report.peak_active >= 1);
        for r in &report.records {
            assert!(r.wait_s >= 0.0);
            assert!(r.movement_s > 0.0);
            assert!(r.slowdown >= 1.0 - 1e-6, "slowdown {}", r.slowdown);
            assert_eq!(r.mispredict, r.model_decision != r.realized_decision);
        }
        assert!(report.makespan_s.is_finite());
        // At load 32 through 3 slots the queue is saturated: waits exist.
        assert!(report.records.iter().any(|r| r.wait_s > 0.0));
    }

    #[test]
    fn parallel_and_sequential_are_bit_identical() {
        let fleet = FleetSim::bundled(FleetConfig::quick(42).with_load(8.0)).unwrap();
        let par = fleet.run(&ThreadPool::new(4)).unwrap();
        let seq = fleet.run_sequential().unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn contention_slows_sessions_and_can_flip_verdicts() {
        // A backbone far below the summed demands forces clipping.
        let mut config = FleetConfig::quick(42).with_load(8.0);
        config.wan = Rate::from_gbps(10.0);
        let report = FleetSim::bundled(config).unwrap().run_sequential().unwrap();
        assert!(report.records.iter().any(|r| r.contended));
        assert!(report.slowdown_p90 > 1.01, "P90 {}", report.slowdown_p90);
        // Quantiles are ordered by construction.
        assert!(report.slowdown_p50 <= report.slowdown_p90);
        assert!(report.slowdown_p90 <= report.slowdown_p99);
        // Scenario aggregates cover every session exactly once.
        let total: usize = report.scenarios.iter().map(|s| s.summary.sessions).sum();
        assert_eq!(total, report.records.len());
    }

    #[test]
    fn fluid_and_exact_fleets_agree_within_the_shape_tolerance() {
        for shape in TraceShape::ALL {
            let config = FleetConfig::quick(42).with_load(6.0).with_shape(shape);
            let fluid = FleetSim::bundled(config.clone().with_fidelity(Fidelity::Fluid))
                .unwrap()
                .run_sequential()
                .unwrap();
            let exact = FleetSim::bundled(config.with_fidelity(Fidelity::Exact))
                .unwrap()
                .run_sequential()
                .unwrap();
            let tol = sss_sim::fluid_tolerance(shape);
            for (f, e) in fluid.records.iter().zip(&exact.records) {
                let rel = (f.movement_s - e.movement_s).abs() / e.movement_s.abs().max(1e-12);
                assert!(
                    rel <= tol,
                    "{}/{shape}: fluid {} vs exact {} (rel {rel} > tol {tol})",
                    f.scenario_id,
                    f.movement_s,
                    e.movement_s
                );
            }
        }
    }

    #[test]
    fn priority_admission_favors_tight_tiers() {
        // Pick two catalog scenarios from different latency tiers; under
        // a saturated single slot, Priority should give the tighter tier
        // the smaller mean wait.
        let all = Scenario::all();
        let tight = all
            .iter()
            .min_by_key(|s| tier_rank(s.tier))
            .unwrap()
            .clone();
        let loose = all
            .iter()
            .max_by_key(|s| tier_rank(s.tier))
            .unwrap()
            .clone();
        assert!(tier_rank(tight.tier) < tier_rank(loose.tier));
        let mut config = FleetConfig::quick(3)
            .with_load(24.0)
            .with_policy(AdmissionPolicy::Priority);
        config.sessions = 40;
        config.slots = 1;
        let report = FleetSim::new(vec![tight.clone(), loose.clone()], config)
            .unwrap()
            .run_sequential()
            .unwrap();
        let mean_wait = |id: &str| {
            let waits: Vec<f64> = report
                .records
                .iter()
                .filter(|r| r.scenario_id == id)
                .map(|r| r.wait_s)
                .collect();
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        assert!(
            mean_wait(&tight.id) < mean_wait(&loose.id),
            "priority admission should favor {} over {}",
            tight.id,
            loose.id
        );
    }

    #[test]
    fn fair_share_balances_scenario_admissions() {
        let mut config = FleetConfig::quick(11)
            .with_load(16.0)
            .with_policy(AdmissionPolicy::FairShare);
        config.sessions = 52;
        config.slots = 2;
        let report = FleetSim::bundled(config).unwrap().run_sequential().unwrap();
        // Every scenario appears exactly sessions/13 times (block shuffle).
        for s in &report.scenarios {
            assert_eq!(s.summary.sessions, 4, "{}", s.scenario_id);
        }
    }

    #[test]
    fn policies_round_trip_labels() {
        for p in AdmissionPolicy::ALL {
            assert_eq!(AdmissionPolicy::parse(p.label()), Ok(p));
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(
            AdmissionPolicy::parse("fair"),
            Ok(AdmissionPolicy::FairShare)
        );
        assert!(AdmissionPolicy::parse("lifo").is_err());
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut c = FleetConfig::quick(1);
        c.slots = 0;
        assert!(c.validate().is_err());
        let mut c = FleetConfig::quick(1);
        c.sessions = 100_000;
        assert!(c.validate().is_err());
        let mut c = FleetConfig::quick(1);
        c.load = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = FleetConfig::quick(1);
        c.frames = 0;
        assert!(c.validate().is_err());
        assert!(FleetConfig::quick(1).validate().is_ok());
        assert!(FleetSim::new(Vec::new(), FleetConfig::quick(1)).is_err());
    }

    #[test]
    fn report_serde_round_trip() {
        let report = FleetSim::bundled(FleetConfig::quick(42))
            .unwrap()
            .run_sequential()
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn tables_and_csv_cover_all_sessions() {
        let report = FleetSim::bundled(FleetConfig::quick(42))
            .unwrap()
            .run_sequential()
            .unwrap();
        assert_eq!(fleet_table(&report).len(), report.records.len());
        assert_eq!(fleet_scenario_table(&report).len(), report.scenarios.len());
        assert_eq!(fleet_summary_table(std::slice::from_ref(&report)).len(), 1);
        let csv = fleet_csv(std::slice::from_ref(&report));
        assert_eq!(csv.as_str().lines().count(), 1 + report.records.len());
        let per_scenario = fleet_scenario_csv(std::slice::from_ref(&report));
        assert_eq!(
            per_scenario.as_str().lines().count(),
            1 + report.scenarios.len()
        );
        assert!(per_scenario
            .as_str()
            .starts_with("load,trace,policy,scenario"));
    }

    #[test]
    fn same_seed_reruns_are_bit_identical_and_seeds_differ() {
        let a = FleetSim::bundled(FleetConfig::quick(42))
            .unwrap()
            .run_sequential()
            .unwrap();
        let b = FleetSim::bundled(FleetConfig::quick(42))
            .unwrap()
            .run_sequential()
            .unwrap();
        assert_eq!(a, b);
        let c = FleetSim::bundled(FleetConfig::quick(43))
            .unwrap()
            .run_sequential()
            .unwrap();
        // A different master seed perturbs the arrival process.
        assert!(a.records[0].arrival_s != c.records[0].arrival_s);
    }

    #[test]
    fn engines_round_trip_labels() {
        for engine in FleetEngine::ALL {
            assert_eq!(FleetEngine::parse(engine.label()), Ok(engine));
            assert_eq!(engine.to_string(), engine.label());
        }
        assert!(FleetEngine::parse("quadratic").is_err());
    }

    /// The tentpole differential gate: under heavy contention, every
    /// shape and policy, the incremental engine reproduces the reference
    /// loop's admissions exactly and its continuous outcomes to within
    /// float dust (the allocators agree to ≤1e-12 relative per event;
    /// event-time shifts compound that slightly).
    #[test]
    fn incremental_and_reference_engines_agree_under_contention() {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-9);
        for policy in AdmissionPolicy::ALL {
            for shape in [TraceShape::Steady, TraceShape::Bursty] {
                let mut config = FleetConfig::quick(11).with_load(6.0);
                config.wan = Rate::from_gbps(12.0);
                config.shape = shape;
                config.policy = policy;
                let inc = FleetSim::bundled(config.clone())
                    .unwrap()
                    .run_sequential()
                    .unwrap();
                let reference = FleetSim::bundled(config.with_engine(FleetEngine::Reference))
                    .unwrap()
                    .run_sequential()
                    .unwrap();
                assert_eq!(inc.records.len(), reference.records.len());
                assert_eq!(inc.peak_active, reference.peak_active);
                assert!(inc.events > 0 && reference.events > 0);
                assert!(
                    inc.records.iter().any(|r| r.contended),
                    "{shape}/{policy}: the cell must actually contend"
                );
                for (a, b) in inc.records.iter().zip(&reference.records) {
                    let tag = format!("{shape}/{policy}/session {}", a.session);
                    assert_eq!(a.scenario_id, b.scenario_id, "{tag}");
                    assert_eq!(a.contended, b.contended, "{tag}: clip status");
                    assert!(
                        close(a.wait_s, b.wait_s),
                        "{tag}: wait {} vs {}",
                        a.wait_s,
                        b.wait_s
                    );
                    assert!(
                        close(a.movement_s, b.movement_s),
                        "{tag}: movement {} vs {}",
                        a.movement_s,
                        b.movement_s
                    );
                    assert!(
                        close(a.completion_s, b.completion_s),
                        "{tag}: completion {} vs {}",
                        a.completion_s,
                        b.completion_s
                    );
                }
            }
        }
    }

    /// Satellite gate: the policy-specialized [`AdmissionQueue`] pops
    /// sessions in exactly the order the reference `pick` scan (plus
    /// `Vec::remove`) produces, for every policy, across an interleaved
    /// arrival/admission schedule.
    #[test]
    fn admission_queue_matches_the_reference_scan() {
        for policy in AdmissionPolicy::ALL {
            let sim = FleetSim::bundled(FleetConfig::quick(7).with_policy(policy)).unwrap();
            let plan = sim.plan();
            let states = sim.session_states(&plan);
            let catalog = sim.scenarios().len();

            let mut queue = AdmissionQueue::new(policy, catalog);
            let mut queued: Vec<usize> = Vec::new();
            let mut admitted = vec![0usize; catalog];
            let mut fast_order = Vec::new();
            let mut reference_order = Vec::new();
            // Interleave pushes with bursts of pops so the queues are
            // exercised at several fill levels and count profiles.
            for (i, st) in states.iter().enumerate() {
                let rank = tier_rank(sim.scenarios()[st.scenario_idx].tier);
                queue.push(i, st.scenario_idx, rank);
                queued.push(i);
                if i % 3 == 0 {
                    if let Some(j) = queue.pop(&admitted) {
                        fast_order.push(j);
                        let pos = sim.pick(&queued, &states, &admitted);
                        let k = queued.remove(pos);
                        reference_order.push(k);
                        admitted[states[k].scenario_idx] += 1;
                    }
                }
            }
            while let Some(j) = queue.pop(&admitted) {
                fast_order.push(j);
                let pos = sim.pick(&queued, &states, &admitted);
                let k = queued.remove(pos);
                reference_order.push(k);
                admitted[states[k].scenario_idx] += 1;
            }
            assert!(queued.is_empty(), "{policy}: both queues must drain");
            assert_eq!(
                fast_order, reference_order,
                "{policy}: admission order must be unchanged"
            );
        }
    }
}
