//! Sharded, memoized response caches keyed on quantized request identity.
//!
//! Every endpoint of the service is pure: the serialized response for a
//! given request never changes, so repeated queries can be answered from
//! memory in O(1) instead of re-deriving the analysis. Two design points
//! matter:
//!
//! * **Quantized keys.** Operators re-ask the same question with floats
//!   that differ in the last bits (`0.8` vs `0.8000000000000001`, a GB
//!   computed two ways). [`CacheKey`] quantizes every model parameter to
//!   9 significant decimal digits, so physically-identical workloads
//!   share an entry while any meaningful change (well above measurement
//!   precision) maps to a new one.
//! * **Sharding.** The cache sits on the hot path of every batch; a
//!   single mutex would serialize the whole pool. Keys hash to one of
//!   [`SHARDS`] independently-locked shards, so concurrent batches
//!   contend only when they touch the same shard.
//!
//! The storage itself ([`ResponseCache`]) is generic over the key type:
//! [`DecisionCache`] keys `/decide` bodies on quantized [`ModelParams`],
//! and the server keys `/frontier` bodies on the full frontier query.
//! Entries store the *serialized* response body (`Arc<str>`), not the
//! response struct: a cache hit returns the exact bytes the miss
//! produced, which is what makes responses byte-identical across worker
//! counts and across the hit/miss boundary.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sss_core::ModelParams;

/// Number of independently-locked shards.
pub const SHARDS: usize = 16;

/// A `/decide` cache key: the seven model parameters, each quantized to
/// 9 significant decimal digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey([u64; 7]);

/// Quantize one component to 9 significant decimal digits.
fn quantize(v: f64) -> u64 {
    // sss-lint: allow(D004, ±0.0 must share a bucket; scientific formatting handles the rest)
    if v == 0.0 {
        return 0;
    }
    // Round-trip through scientific notation with 8 fractional digits
    // (9 significant): cheap, allocation-bounded, and exactly mirrors how
    // the values print, so "looks equal" implies "caches equal".
    format!("{v:.8e}").parse::<f64>().unwrap_or(v).to_bits()
}

impl CacheKey {
    /// Key for a parameter set.
    pub fn of(p: &ModelParams) -> Self {
        CacheKey([
            quantize(p.data_unit.as_b()),
            quantize(p.intensity.as_flop_per_byte()),
            quantize(p.local_rate.as_flops()),
            quantize(p.remote_rate.as_flops()),
            quantize(p.bandwidth.as_bytes_per_sec()),
            quantize(p.alpha.value()),
            quantize(p.theta.value()),
        ])
    }
}

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

struct Shard<K> {
    // Iteration order over this map never reaches a response: lookups are
    // point `get`s, eviction order comes from `order` (a FIFO queue), and
    // `stats()` only sums per-shard `len()`s. If that ever changes, swap
    // in a BTreeMap or sort before emitting — D001 exists to catch it.
    // sss-lint: allow(D001, point lookups only; order never feeds output)
    map: HashMap<K, Arc<str>>,
    // Insertion order for FIFO eviction. An entry is evicted when its
    // shard exceeds its share of the configured capacity.
    order: VecDeque<K>,
}

impl<K> Default for Shard<K> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

/// Point-in-time cache counters, served under `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that had to evaluate the model.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

/// A sharded body cache over any hashable key. Capacity 0 disables
/// storage entirely (every lookup is a miss) — the uncached baseline the
/// benches compare against.
pub struct ResponseCache<K> {
    shards: Vec<Mutex<Shard<K>>>,
    per_shard_capacity: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The `/decide` response cache, keyed on quantized model parameters.
pub type DecisionCache = ResponseCache<CacheKey>;

impl<K: Hash + Eq + Clone> ResponseCache<K> {
    /// Cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of [`SHARDS`]); 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a key, counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<Arc<str>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self.shards[shard_of(key)].lock().map.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a freshly-evaluated response body, evicting the shard's
    /// oldest entry if it is full. A no-op when caching is disabled.
    pub fn insert(&self, key: K, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let mut shard = self.shards[shard_of(&key)].lock();
        if shard.map.insert(key.clone(), body).is_none() {
            shard.order.push_back(key);
            if shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_units::{Bytes, ComputeIntensity, FlopRate, Rate, Ratio};

    fn params(alpha: f64) -> ModelParams {
        ModelParams::builder()
            .data_unit(Bytes::from_gb(2.0))
            .intensity(ComputeIntensity::from_tflop_per_gb(17.0))
            .local_rate(FlopRate::from_tflops(10.0))
            .remote_rate(FlopRate::from_tflops(340.0))
            .bandwidth(Rate::from_gbps(25.0))
            .alpha(Ratio::new(alpha))
            .build()
            .unwrap()
    }

    #[test]
    fn hit_after_insert() {
        let cache = DecisionCache::new(64);
        let key = CacheKey::of(&params(0.8));
        assert!(cache.get(&key).is_none());
        cache.insert(key, Arc::from("body"));
        assert_eq!(cache.get(&key).as_deref(), Some("body"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn quantization_merges_float_noise() {
        let a = CacheKey::of(&params(0.8));
        let b = CacheKey::of(&params(0.8 + 1e-13));
        assert_eq!(a, b, "sub-precision noise must share an entry");
        let c = CacheKey::of(&params(0.81));
        assert_ne!(a, c, "meaningful changes must not collide");
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let cache = DecisionCache::new(0);
        let key = CacheKey::of(&params(0.8));
        cache.insert(key, Arc::from("body"));
        assert!(cache.get(&key).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.entries), (0, 0));
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn eviction_is_fifo_per_shard() {
        // Capacity 16 → one entry per shard; a second key landing in an
        // occupied shard must displace the first.
        let cache = DecisionCache::new(SHARDS);
        let keys: Vec<CacheKey> = (0..200)
            .map(|i| CacheKey::of(&params(0.2 + 0.003 * i as f64)))
            .collect();
        for k in &keys {
            cache.insert(*k, Arc::from("x"));
        }
        let s = cache.stats();
        assert!(s.entries <= SHARDS, "entries {} > capacity", s.entries);
        assert!(s.evictions > 0);
    }

    #[test]
    fn reinsert_does_not_grow_order() {
        let cache = DecisionCache::new(64);
        let key = CacheKey::of(&params(0.8));
        for _ in 0..100 {
            cache.insert(key, Arc::from("body"));
        }
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn string_keyed_cache_works() {
        // The generic storage also backs the /frontier body cache.
        let cache: ResponseCache<String> = ResponseCache::new(32);
        cache.insert("query-a".to_string(), Arc::from("map"));
        assert_eq!(cache.get(&"query-a".to_string()).as_deref(), Some("map"));
        assert!(cache.get(&"query-b".to_string()).is_none());
    }
}
