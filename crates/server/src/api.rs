//! Wire types for the decision service: request and response bodies.
//!
//! Requests use the paper's own units (GB, TF/GB, TFLOPS, Gbps) as flat
//! JSON numbers — the same convention as [`sss_core::ScenarioSpec`] — so a
//! facility operator can POST the row of Table 3 they care about without
//! converting anything. Responses embed the analytic types of `sss-core`
//! (`DecisionReport`, `BreakEven`, `Sensitivity`, `TierReport`) verbatim.

use serde::{Deserialize, Serialize};
use sss_core::{
    decide, Axis, BreakEven, Decision, DecisionReport, FrontierSpec, ModelParams, ParamError,
    Scenario, Sensitivity, Tier, TierReport,
};
use sss_loadgen::{
    AdmissionPolicy, FleetConfig, FleetEngine, FleetSim, FrontierJob, ReplayConfig, SessionReplay,
};
use sss_sim::{Fidelity, TraceShape};
use sss_units::{Bytes, ComputeIntensity, FlopRate, Rate, Ratio};

fn default_theta() -> f64 {
    1.0
}

/// Body of `POST /decide`: one workload in paper units.
///
/// `theta` defaults to 1 (pure streaming, no file-I/O inflation) when the
/// field is omitted, mirroring the CLI's optional `--theta`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecideRequest {
    /// `S_unit` in decimal gigabytes.
    pub data_gb: f64,
    /// `C` in TFLOP per GB of data.
    pub intensity_tflop_per_gb: f64,
    /// `R_local` in TFLOPS.
    pub local_tflops: f64,
    /// `R_remote` in TFLOPS.
    pub remote_tflops: f64,
    /// `Bw` in Gbps.
    pub bandwidth_gbps: f64,
    /// `α`: transfer efficiency in `(0, 1]`.
    pub alpha: f64,
    /// `θ`: file-I/O overhead coefficient (defaults to 1).
    #[serde(default = "default_theta")]
    pub theta: f64,
}

impl DecideRequest {
    /// Validate the request into typed model parameters.
    pub fn params(&self) -> Result<ModelParams, ParamError> {
        ModelParams::builder()
            .data_unit(Bytes::from_gb(self.data_gb))
            .intensity(ComputeIntensity::from_tflop_per_gb(
                self.intensity_tflop_per_gb,
            ))
            .local_rate(FlopRate::from_tflops(self.local_tflops))
            .remote_rate(FlopRate::from_tflops(self.remote_tflops))
            .bandwidth(Rate::from_gbps(self.bandwidth_gbps))
            .alpha(Ratio::new(self.alpha))
            .theta(Ratio::new(self.theta))
            .build()
    }

    /// The request that round-trips to `params` (used by the load driver
    /// and tests to build request bodies from registry scenarios).
    pub fn from_params(p: &ModelParams) -> Self {
        DecideRequest {
            data_gb: p.data_unit.as_gb(),
            intensity_tflop_per_gb: p.intensity.as_tflop_per_gb(),
            local_tflops: p.local_rate.as_tflops(),
            remote_tflops: p.remote_rate.as_tflops(),
            bandwidth_gbps: p.bandwidth.as_gbps(),
            alpha: p.alpha.value(),
            theta: p.theta.value(),
        }
    }
}

/// Body of a `200` response to `POST /decide`.
///
/// Matches the CLI's `decide` output: the verdict with its justification,
/// plus break-even boundaries and parameter sensitivities whenever the
/// stream is feasible at all (both are omitted for `Infeasible` workloads,
/// where no boundary is meaningful).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecideResponse {
    /// The verdict and the numbers that drove it.
    pub report: DecisionReport,
    /// Where the decision flips; absent for infeasible workloads.
    pub break_even: Option<BreakEven>,
    /// Elasticities of `T_pct`; absent for infeasible workloads.
    pub sensitivity: Option<Sensitivity>,
}

impl DecideResponse {
    /// Evaluate one workload. Pure: identical parameters always produce an
    /// identical response, which is what makes the decision cache sound.
    pub fn evaluate(params: &ModelParams) -> Self {
        Self::from_report(params, decide(params))
    }

    /// Wrap an already-evaluated report — the batched dispatcher computes
    /// a whole wave's reports in one `sss_core::decide_batch` pass, then
    /// finishes each response (break-even boundaries, sensitivities,
    /// serialization) per workload. Byte-identical to
    /// [`DecideResponse::evaluate`] for the same parameters.
    pub fn from_report(params: &ModelParams, report: DecisionReport) -> Self {
        let feasible = report.decision != Decision::Infeasible;
        DecideResponse {
            report,
            break_even: feasible.then(|| BreakEven::of(params)),
            sensitivity: feasible.then(|| Sensitivity::of(params)),
        }
    }
}

/// Body of `POST /tiers`: a workload plus the measured worst-case
/// inflation (Streaming Speed Score, Eq. 11) to bound the transfer by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TiersRequest {
    /// The workload in paper units.
    pub workload: DecideRequest,
    /// Worst-case transfer inflation (`>= 1`, e.g. `7.5`).
    pub sss: f64,
}

/// Body of a `200` response to `POST /tiers`: the three budgeted tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiersResponse {
    /// The inflation the evaluation assumed.
    pub sss: f64,
    /// One report per budgeted tier (real-time, near, quasi).
    pub tiers: Vec<TierReport>,
}

impl TiersResponse {
    /// Evaluate the workload against every budgeted tier.
    pub fn evaluate(params: &ModelParams, sss: Ratio) -> Self {
        let tiers = [Tier::RealTime, Tier::NearRealTime, Tier::QuasiRealTime]
            .iter()
            .filter_map(|t| TierReport::evaluate(params, sss, *t))
            .collect();
        TiersResponse {
            sss: sss.value(),
            tiers,
        }
    }
}

/// One catalog entry in the `GET /scenarios` response: the registered
/// scenario together with its analytic verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEntry {
    /// The registered scenario (identity, provenance, parameters, tier).
    pub scenario: Scenario,
    /// The decision the model reaches for it.
    pub decision: DecisionReport,
}

/// Body of a `200` response to `GET /scenarios`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenariosResponse {
    /// Number of registered scenarios.
    pub count: usize,
    /// The catalog, in registry order.
    pub scenarios: Vec<ScenarioEntry>,
}

impl ScenariosResponse {
    /// Evaluate the bundled registry (computed once at server start).
    pub fn bundled() -> Self {
        let scenarios: Vec<ScenarioEntry> = Scenario::all()
            .into_iter()
            .map(|scenario| {
                let decision = decide(&scenario.params);
                ScenarioEntry { scenario, decision }
            })
            .collect();
        ScenariosResponse {
            count: scenarios.len(),
            scenarios,
        }
    }
}

fn default_resolution() -> usize {
    16
}

fn default_tolerance() -> f64 {
    1e-3
}

fn default_slices() -> usize {
    3
}

/// Body of `POST /frontier`: a base workload plus the axes to map the
/// break-even boundary over.
///
/// Axes use the CLI's compact `name:lo:hi[:log]` notation (e.g.
/// `"wan_gbps:1:400"`, `"data_tb:0.1:100:log"`). The response is the
/// serialized [`sss_core::FrontierMap`] — byte-identical to what the CLI
/// and the sequential reference produce for the same query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierRequest {
    /// The base operating point, in paper units.
    pub workload: DecideRequest,
    /// X axis spec.
    pub x: String,
    /// Y axis spec.
    pub y: String,
    /// Optional slicing axis spec.
    #[serde(default)]
    pub z: Option<String>,
    /// Coarse-grid samples per primary axis (default 16, max
    /// [`FrontierRequest::MAX_RESOLUTION`]).
    #[serde(default = "default_resolution")]
    pub resolution: usize,
    /// Boundary tolerance as a fraction of each axis span (default 1e-3).
    #[serde(default = "default_tolerance")]
    pub tolerance: f64,
    /// Z slices when `z` is given (default 3, max
    /// [`FrontierRequest::MAX_SLICES`]).
    #[serde(default = "default_slices")]
    pub slices: usize,
}

impl FrontierRequest {
    /// Largest grid the service computes per request.
    pub const MAX_RESOLUTION: usize = 128;
    /// Most z slices the service computes per request.
    pub const MAX_SLICES: usize = 8;

    /// Validate the request into a runnable frontier job.
    pub fn job(&self) -> Result<FrontierJob, String> {
        let params = self.workload.params().map_err(|e| e.to_string())?;
        if self.resolution > Self::MAX_RESOLUTION {
            return Err(format!(
                "resolution {} exceeds the service cap of {}",
                self.resolution,
                Self::MAX_RESOLUTION
            ));
        }
        if self.slices > Self::MAX_SLICES {
            return Err(format!(
                "slices {} exceeds the service cap of {}",
                self.slices,
                Self::MAX_SLICES
            ));
        }
        let mut spec = FrontierSpec::new(Axis::parse(&self.x)?, Axis::parse(&self.y)?);
        spec.z = self.z.as_deref().map(Axis::parse).transpose()?;
        spec.resolution = self.resolution;
        spec.tolerance = self.tolerance;
        spec.slices = self.slices;
        FrontierJob::new(params, spec)
    }
}

fn default_shapes() -> Vec<String> {
    TraceShape::ALL.iter().map(|s| s.label().into()).collect()
}

fn default_frames() -> u32 {
    64
}

fn default_files() -> u32 {
    16
}

fn default_seed() -> u64 {
    42
}

fn default_fidelity() -> String {
    "exact".into()
}

/// Body of `POST /simulate`: a workload plus the WAN trace shapes to
/// replay it under through the event-driven simulator.
///
/// The response is the serialized
/// [`sss_loadgen::ReplayReport`] — per-trace simulated completion,
/// relative error against the closed-form model, and decision agreement;
/// byte-identical to what `stream-score simulate` computes for the same
/// workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// The workload in paper units.
    pub workload: DecideRequest,
    /// Trace-shape labels (default: all four bundled shapes).
    #[serde(default = "default_shapes")]
    pub shapes: Vec<String>,
    /// Frames the data unit is split into (default 64, max
    /// [`SimulateRequest::MAX_FRAMES`]).
    #[serde(default = "default_frames")]
    pub frames: u32,
    /// File count for the staged-replay column (default 16).
    #[serde(default = "default_files")]
    pub files: u32,
    /// Seed for the `bursty` shape's dip placement (default 42).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Movement integrator: `"exact"` (per-frame events, the default),
    /// `"fluid"` (closed-form piecewise-constant rate integration), or
    /// `"hybrid"` (fluid where provably exact, events elsewhere).
    #[serde(default = "default_fidelity")]
    pub fidelity: String,
}

impl SimulateRequest {
    /// Largest per-request frame split the service simulates.
    pub const MAX_FRAMES: u32 = 4096;

    /// Validate the request into a runnable replay.
    pub fn replay(&self) -> Result<SessionReplay, String> {
        let params = self.workload.params().map_err(|e| e.to_string())?;
        if self.frames > Self::MAX_FRAMES {
            return Err(format!(
                "frames {} exceeds the service cap of {}",
                self.frames,
                Self::MAX_FRAMES
            ));
        }
        let shapes = self
            .shapes
            .iter()
            .map(|s| TraceShape::parse(s))
            .collect::<Result<Vec<TraceShape>, String>>()?;
        let config = ReplayConfig {
            frames: self.frames,
            files: self.files,
            shapes,
            seed: self.seed,
            fidelity: Fidelity::parse(&self.fidelity)?,
        };
        let scenario = Scenario {
            id: "workload".into(),
            name: "POST /simulate workload".into(),
            provenance: "request body".into(),
            params,
            tier: Tier::NearRealTime,
        };
        SessionReplay::new(vec![scenario], config)
    }
}

fn default_fleet_sessions() -> u32 {
    26
}

fn default_fleet_load() -> f64 {
    4.0
}

fn default_fleet_shape() -> String {
    "steady".into()
}

fn default_fleet_policy() -> String {
    "fifo".into()
}

fn default_fleet_slots() -> u32 {
    4
}

fn default_fleet_wan_gbps() -> f64 {
    100.0
}

fn default_fleet_frames() -> u32 {
    16
}

fn default_fleet_fidelity() -> String {
    "fluid".into()
}

fn default_fleet_engine() -> String {
    "incremental".into()
}

/// Body of `POST /fleet`: a multi-tenant fleet drawn from the bundled
/// scenario catalog, replayed under WAN sharing and DTN slot contention.
///
/// The response is the serialized [`sss_loadgen::FleetReport`] —
/// per-session contended completions, per-scenario mispredict rates and
/// the slowdown distribution; byte-identical to what `stream-score fleet`
/// computes for the same knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRequest {
    /// Sessions drawn from the catalog (default 26; the service rejects
    /// requests above its configured cap, which defaults to
    /// [`FleetRequest::DEFAULT_SESSION_CAP`]).
    #[serde(default = "default_fleet_sessions")]
    pub sessions: u32,
    /// Offered load in Erlangs (default 4).
    #[serde(default = "default_fleet_load")]
    pub load: f64,
    /// Trace-shape label for every session's private path (default
    /// `"steady"`).
    #[serde(default = "default_fleet_shape")]
    pub shape: String,
    /// Admission-policy label: `"fifo"`, `"fair-share"` or `"priority"`
    /// (default `"fifo"`).
    #[serde(default = "default_fleet_policy")]
    pub policy: String,
    /// Concurrent DTN transfer slots (default 4).
    #[serde(default = "default_fleet_slots")]
    pub slots: u32,
    /// Shared WAN backbone capacity in Gbps (default 100).
    #[serde(default = "default_fleet_wan_gbps")]
    pub wan_gbps: f64,
    /// Frames per session for the movement pipeline (default 16).
    #[serde(default = "default_fleet_frames")]
    pub frames: u32,
    /// Master seed (default 42).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Movement integrator label (default `"fluid"`).
    #[serde(default = "default_fleet_fidelity")]
    pub fidelity: String,
    /// Allocation-engine label: `"incremental"` or `"reference"`
    /// (default `"incremental"`).
    #[serde(default = "default_fleet_engine")]
    pub engine: String,
}

impl Default for FleetRequest {
    fn default() -> Self {
        FleetRequest {
            sessions: default_fleet_sessions(),
            load: default_fleet_load(),
            shape: default_fleet_shape(),
            policy: default_fleet_policy(),
            slots: default_fleet_slots(),
            wan_gbps: default_fleet_wan_gbps(),
            frames: default_fleet_frames(),
            seed: default_seed(),
            fidelity: default_fleet_fidelity(),
            engine: default_fleet_engine(),
        }
    }
}

impl FleetRequest {
    /// Default service cap on per-request fleet size — well under the
    /// library's own bound, because each session costs a pipeline
    /// replay. Deployments size the actual limit via
    /// `ServerConfig::fleet_session_cap`.
    pub const DEFAULT_SESSION_CAP: u32 = 512;

    /// Validate the request into a runnable fleet, holding it to the
    /// service's configured session cap.
    pub fn fleet(&self, session_cap: u32) -> Result<FleetSim, String> {
        if self.sessions > session_cap {
            return Err(format!(
                "sessions {} exceeds the service cap of {session_cap}",
                self.sessions,
            ));
        }
        if !(self.wan_gbps.is_finite() && self.wan_gbps > 0.0) {
            return Err(format!(
                "wan_gbps must be positive and finite, got {}",
                self.wan_gbps
            ));
        }
        let config = FleetConfig {
            sessions: self.sessions,
            load: self.load,
            shape: TraceShape::parse(&self.shape)?,
            policy: AdmissionPolicy::parse(&self.policy)?,
            slots: self.slots,
            wan: Rate::from_gbps(self.wan_gbps),
            frames: self.frames,
            seed: self.seed,
            fidelity: Fidelity::parse(&self.fidelity)?,
            engine: FleetEngine::parse(&self.engine)?,
        };
        FleetSim::bundled(config)
    }
}

/// Body of every non-`200` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// What went wrong, suitable for showing to the caller.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> DecideRequest {
        DecideRequest {
            data_gb: 2.0,
            intensity_tflop_per_gb: 17.0,
            local_tflops: 10.0,
            remote_tflops: 340.0,
            bandwidth_gbps: 25.0,
            alpha: 0.8,
            theta: 1.0,
        }
    }

    #[test]
    fn request_roundtrips_to_params() {
        let req = table3();
        let params = req.params().unwrap();
        assert_eq!(DecideRequest::from_params(&params), req);
    }

    #[test]
    fn theta_defaults_to_one() {
        let req: DecideRequest = serde_json::from_str(
            r#"{"data_gb":2.0,"intensity_tflop_per_gb":17.0,"local_tflops":10.0,
                "remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8}"#,
        )
        .unwrap();
        assert_eq!(req.theta, 1.0);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let mut req = table3();
        req.alpha = 1.5;
        assert_eq!(req.params().unwrap_err().parameter, "alpha");
    }

    #[test]
    fn feasible_response_has_boundaries() {
        let resp = DecideResponse::evaluate(&table3().params().unwrap());
        assert_eq!(resp.report.decision, Decision::RemoteStream);
        assert!(resp.break_even.is_some());
        assert!(resp.sensitivity.is_some());
    }

    #[test]
    fn infeasible_response_omits_boundaries() {
        let mut req = table3();
        req.data_gb = 4.0; // 32 Gbps demanded on a 25 Gbps link
        req.alpha = 1.0;
        let resp = DecideResponse::evaluate(&req.params().unwrap());
        assert_eq!(resp.report.decision, Decision::Infeasible);
        assert!(resp.break_even.is_none());
        assert!(resp.sensitivity.is_none());
    }

    #[test]
    fn tiers_cover_three_budgets() {
        let params = table3().params().unwrap();
        let resp = TiersResponse::evaluate(&params, Ratio::new(7.5));
        assert_eq!(resp.tiers.len(), 3);
        assert_eq!(resp.tiers[0].tier, Tier::RealTime);
    }

    #[test]
    fn scenarios_match_registry() {
        let resp = ScenariosResponse::bundled();
        assert_eq!(resp.count, Scenario::all().len());
        assert!(resp
            .scenarios
            .iter()
            .any(|e| e.scenario.id == "lcls-coherent-scattering"));
    }

    #[test]
    fn frontier_request_defaults_and_caps() {
        let req: FrontierRequest = serde_json::from_str(&format!(
            r#"{{"workload":{},"x":"wan_gbps:1:400","y":"data_tb:0.1:100"}}"#,
            serde_json::to_string(&table3()).unwrap()
        ))
        .unwrap();
        assert_eq!(req.resolution, 16);
        assert_eq!(req.tolerance, 1e-3);
        let job = req.job().unwrap();
        assert_eq!(job.spec().resolution, 16);

        let mut oversized = req.clone();
        oversized.resolution = 4096;
        assert!(oversized.job().unwrap_err().contains("cap"), "capped");

        let mut bad_axis = req;
        bad_axis.x = "frobs:1:2".into();
        assert!(bad_axis.job().unwrap_err().contains("unknown axis"));
    }

    #[test]
    fn decide_response_serde_roundtrip() {
        let resp = DecideResponse::evaluate(&table3().params().unwrap());
        let json = serde_json::to_string(&resp).unwrap();
        let back: DecideResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }
}
