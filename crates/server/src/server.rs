//! The TCP accept loop, request router, and lifecycle handle.

use std::collections::HashSet;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sss_units::Ratio;

use sss_exec::poll::WakePipe;
use sss_exec::ThreadPool;

use crate::api::{
    ErrorResponse, FleetRequest, FrontierRequest, ScenariosResponse, SimulateRequest, TiersRequest,
};
use crate::batch::{BatchStats, Batcher};
use crate::cache::{CacheKey, CacheStats, DecisionCache, ResponseCache};
use crate::http::{read_request, write_response, HttpError, Request};

/// Which connection front end serves the listener.
///
/// Both front ends route through the same caches, batcher and pool, and
/// produce byte-identical responses (CI byte-compares them); they differ
/// only in how connections are multiplexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Frontend {
    /// One blocking OS thread per accepted connection. Portable and
    /// simple; concurrency is capped by thread spawn cost.
    Threaded,
    /// Single nonblocking epoll event loop over per-connection state
    /// machines (keep-alive + pipelining), dispatching parsed requests to
    /// a small service pool. Linux-only; the C10k front end.
    Reactor,
}

impl Frontend {
    /// `"threaded"` / `"reactor"` — the CLI/serde spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Frontend::Threaded => "threaded",
            Frontend::Reactor => "reactor",
        }
    }
}

impl Default for Frontend {
    /// The reactor where it exists (Linux), the portable threaded loop
    /// elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            Frontend::Reactor
        } else {
            Frontend::Threaded
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(Frontend::Threaded),
            "reactor" => Ok(Frontend::Reactor),
            other => Err(format!(
                "unknown frontend {other:?} (expected threaded|reactor)"
            )),
        }
    }
}

/// How the service is sized. `Default` is a sensible interactive setup:
/// an OS-assigned port, one worker per core, a 4096-entry cache and
/// 32-request batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// TCP port to bind on `127.0.0.1` (0 = let the OS pick).
    pub port: u16,
    /// Worker threads evaluating `/decide` batches.
    pub workers: usize,
    /// Decision-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum `/decide` requests evaluated per pool wave.
    pub max_batch: usize,
    /// Largest fleet a single `POST /fleet` request may simulate;
    /// requests above it get a 400. Defaults to
    /// [`FleetRequest::DEFAULT_SESSION_CAP`] and is reported by
    /// `GET /healthz`.
    #[serde(default = "default_fleet_session_cap")]
    pub fleet_session_cap: u32,
    /// Which connection front end multiplexes the listener.
    #[serde(default)]
    pub frontend: Frontend,
    /// Most connections the reactor holds open at once; accepts beyond it
    /// are dropped immediately. (The threaded front end is bounded by
    /// thread spawn instead.)
    #[serde(default = "default_max_connections")]
    pub max_connections: usize,
    /// Idle timeout counted in quiet reactor ticks — `epoll_wait`
    /// timeouts with zero events — so the hot path never reads a wall
    /// clock (0 disables the timeout). The threaded front end converts
    /// `idle_timeout_ticks × tick_ms` into its blocking read timeout, so
    /// both front ends idle out after the same nominal duration.
    #[serde(default = "default_idle_timeout_ticks")]
    pub idle_timeout_ticks: u64,
    /// Reactor tick length: the bound on `epoll_wait`, and therefore on
    /// how stale a shutdown flag can go unobserved, in milliseconds.
    #[serde(default = "default_tick_ms")]
    pub tick_ms: u64,
    /// Bytes the reactor reads from a socket per `read` call.
    #[serde(default = "default_read_buffer")]
    pub read_buffer: usize,
    /// Pending-response bytes a connection may buffer before the reactor
    /// stops reading more requests from it (pipelining backpressure).
    #[serde(default = "default_write_buffer")]
    pub write_buffer: usize,
}

/// Serde default: configurations that predate the knob keep the
/// historical 512-session service cap.
fn default_fleet_session_cap() -> u32 {
    FleetRequest::DEFAULT_SESSION_CAP
}

/// Serde default for [`Health::frontend`]: health bodies that predate the
/// field came from the threaded accept loop.
fn default_frontend_name() -> String {
    "threaded".to_owned()
}

/// Serde default: plenty for the CI box, far under typical fd hard caps.
fn default_max_connections() -> usize {
    16 * 1024
}

/// Serde default: 300 ticks × 100 ms = the threaded front end's
/// historical 30 s read timeout.
fn default_idle_timeout_ticks() -> u64 {
    300
}

/// Serde default: 100 ms shutdown-observation bound.
fn default_tick_ms() -> u64 {
    100
}

/// Serde default: one typical request burst per `read`.
fn default_read_buffer() -> usize {
    8 * 1024
}

/// Serde default: a few large (`/frontier`-sized) bodies of backlog.
fn default_write_buffer() -> usize {
    256 * 1024
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            max_batch: 32,
            fleet_session_cap: FleetRequest::DEFAULT_SESSION_CAP,
            frontend: Frontend::default(),
            max_connections: default_max_connections(),
            idle_timeout_ticks: default_idle_timeout_ticks(),
            tick_ms: default_tick_ms(),
            read_buffer: default_read_buffer(),
            write_buffer: default_write_buffer(),
        }
    }
}

/// The identity of a `/frontier` query: quantized base parameters plus
/// every knob that shapes the map. Two requests with the same key get the
/// same bytes back.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FrontierKey {
    params: CacheKey,
    x: String,
    y: String,
    z: Option<String>,
    resolution: usize,
    tolerance_bits: u64,
    slices: usize,
}

impl FrontierKey {
    fn of(request: &FrontierRequest, params: &sss_core::ModelParams) -> Self {
        FrontierKey {
            params: CacheKey::of(params),
            x: request.x.clone(),
            y: request.y.clone(),
            z: request.z.clone(),
            resolution: request.resolution,
            tolerance_bits: request.tolerance.to_bits(),
            slices: request.slices,
        }
    }
}

/// Frontier responses are three orders of magnitude bigger than decide
/// bodies, so their cache holds at most this many entries regardless of
/// the configured `/decide` capacity.
const FRONTIER_CACHE_CAP: usize = 64;

/// `/simulate` bodies are mid-sized (one record per trace shape), so
/// their cache sits between the decide and frontier caps.
const SIMULATE_CACHE_CAP: usize = 256;

/// `/fleet` bodies carry one record per session (hundreds of sessions at
/// the service cap), so their cache is sized like `/frontier`'s.
const FLEET_CACHE_CAP: usize = 64;

/// The identity of a `/fleet` query: every knob that shapes the fleet,
/// with float knobs compared by their exact bits (the engine is a pure
/// function of them, so bit-equal knobs mean byte-equal bodies).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FleetKey {
    sessions: u32,
    load_bits: u64,
    shape: String,
    policy: String,
    slots: u32,
    wan_bits: u64,
    frames: u32,
    seed: u64,
    fidelity: String,
}

impl FleetKey {
    fn of(request: &FleetRequest) -> Self {
        FleetKey {
            sessions: request.sessions,
            load_bits: request.load.to_bits(),
            shape: request.shape.clone(),
            policy: request.policy.clone(),
            slots: request.slots,
            wan_bits: request.wan_gbps.to_bits(),
            frames: request.frames,
            seed: request.seed,
            fidelity: request.fidelity.clone(),
        }
    }
}

/// The identity of a `/simulate` query: quantized base parameters plus
/// every knob that shapes the replay.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SimulateKey {
    params: CacheKey,
    shapes: Vec<String>,
    frames: u32,
    files: u32,
    seed: u64,
    fidelity: String,
}

impl SimulateKey {
    fn of(request: &SimulateRequest, params: &sss_core::ModelParams) -> Self {
        SimulateKey {
            params: CacheKey::of(params),
            shapes: request.shapes.clone(),
            frames: request.frames,
            files: request.files,
            seed: request.seed,
            fidelity: request.fidelity.clone(),
        }
    }
}

/// Single-flight coordination: the first thread to miss on a key
/// computes; identical concurrent misses wait for its insert and are
/// then served the computer's exact bytes from the cache, instead of
/// burning the pool N times for one answer. The vendored parking_lot
/// has no Condvar, so this uses std's; a poisoned lock is recovered
/// rather than propagated (the critical sections are pure HashSet
/// operations, so the set cannot be left inconsistent).
struct SingleFlight<K> {
    inflight: Mutex<HashSet<K>>,
    done: Condvar,
}

impl<K: Clone + Eq + std::hash::Hash> SingleFlight<K> {
    fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashSet::new()),
            done: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashSet<K>> {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Serve `key` from `cache`, computing the body at most once across
    /// concurrent identical requests. (With caching disabled every
    /// waiter recomputes — degenerate but correct.)
    fn serve(
        &self,
        cache: &ResponseCache<K>,
        key: K,
        compute: impl FnOnce() -> Arc<str>,
    ) -> Arc<str> {
        loop {
            if let Some(hit) = cache.get(&key) {
                return hit;
            }
            let mut inflight = self.lock();
            if inflight.insert(key.clone()) {
                break;
            }
            // Someone else is computing this key: wait for them to
            // finish, then re-check the cache.
            drop(
                self.done
                    .wait(inflight)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
        }
        // Remove the claim even if serialization or the pool panics, so
        // an identical later request is never stuck waiting forever.
        struct Claim<'a, K: Clone + Eq + std::hash::Hash> {
            flight: &'a SingleFlight<K>,
            key: &'a K,
        }
        impl<K: Clone + Eq + std::hash::Hash> Drop for Claim<'_, K> {
            fn drop(&mut self) {
                self.flight.lock().remove(self.key);
                self.flight.done.notify_all();
            }
        }
        let claim = Claim {
            flight: self,
            key: &key,
        };
        // Re-check after winning the claim: another computer's insert
        // may have landed between our miss and our claim, and recomputing
        // for bytes already in the cache would waste the pool.
        if let Some(hit) = cache.get(&key) {
            drop(claim);
            return hit;
        }
        let body = compute();
        cache.insert(key.clone(), body.clone());
        drop(claim);
        body
    }

    /// [`SingleFlight::serve`] for a compute step that can fail: only a
    /// success is memoized, so a failure body answers this caller alone
    /// and an identical later request recomputes instead of being served
    /// a cached error.
    fn serve_fallible(
        &self,
        cache: &ResponseCache<K>,
        key: K,
        compute: impl FnOnce() -> Result<Arc<str>, Arc<str>>,
    ) -> Result<Arc<str>, Arc<str>> {
        loop {
            if let Some(hit) = cache.get(&key) {
                return Ok(hit);
            }
            let mut inflight = self.lock();
            if inflight.insert(key.clone()) {
                break;
            }
            drop(
                self.done
                    .wait(inflight)
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            // A computer that *failed* releases its claim without an
            // insert; the re-check misses and this waiter takes over.
        }
        struct Claim<'a, K: Clone + Eq + std::hash::Hash> {
            flight: &'a SingleFlight<K>,
            key: &'a K,
        }
        impl<K: Clone + Eq + std::hash::Hash> Drop for Claim<'_, K> {
            fn drop(&mut self) {
                self.flight.lock().remove(self.key);
                self.flight.done.notify_all();
            }
        }
        let claim = Claim {
            flight: self,
            key: &key,
        };
        if let Some(hit) = cache.get(&key) {
            drop(claim);
            return Ok(hit);
        }
        let result = compute();
        if let Ok(body) = &result {
            cache.insert(key.clone(), body.clone());
        }
        drop(claim);
        result
    }
}

/// Everything a connection (thread or reactor) needs, shared behind one
/// `Arc`. `pub(crate)` so the reactor module can route through the same
/// state the threaded front end uses.
pub(crate) struct AppState {
    cache: Arc<DecisionCache>,
    /// Shared pool `/frontier` and `/simulate` cache misses fan their
    /// work across, sized like the batcher's.
    miss_pool: ThreadPool,
    frontier_cache: ResponseCache<FrontierKey>,
    frontier_flight: SingleFlight<FrontierKey>,
    simulate_cache: ResponseCache<SimulateKey>,
    simulate_flight: SingleFlight<SimulateKey>,
    fleet_cache: ResponseCache<FleetKey>,
    fleet_flight: SingleFlight<FleetKey>,
    batcher: Batcher,
    scenarios_body: Arc<str>,
    started: Instant,
    pub(crate) requests: AtomicU64,
    /// Connections currently open, across either front end.
    pub(crate) open_conns: AtomicU64,
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Self-pipe waking the reactor's `epoll_wait` (completions and
    /// shutdown); `None` under the threaded front end.
    pub(crate) waker: Option<Arc<WakePipe>>,
}

/// The `/healthz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Health {
    /// Always `"ok"` while the service answers.
    pub status: String,
    /// Seconds since the listener was bound.
    pub uptime_s: f64,
    /// Requests handled across all endpoints.
    pub requests: u64,
    /// Worker threads configured for `/decide` batches.
    pub workers: usize,
    /// Maximum batch size configured.
    pub max_batch: usize,
    /// Which front end is serving (`"threaded"` or `"reactor"`).
    #[serde(default = "default_frontend_name")]
    pub frontend: String,
    /// Connections open at the moment of the probe (including the one
    /// carrying it).
    #[serde(default)]
    pub open_connections: u64,
    /// Decision-cache counters.
    pub cache: CacheStats,
    /// Batching counters.
    pub batch: BatchStats,
    /// `/frontier` body-cache counters.
    pub frontier_cache: CacheStats,
    /// `/simulate` body-cache counters.
    pub simulate_cache: CacheStats,
    /// `/fleet` body-cache counters.
    pub fleet_cache: CacheStats,
    /// Largest fleet a single `/fleet` request may simulate (the
    /// configured service cap).
    #[serde(default = "default_fleet_session_cap")]
    pub fleet_session_cap: u32,
}

/// A bound-but-not-yet-serving instance: inspect [`Server::local_addr`],
/// then either [`Server::run`] on this thread or [`Server::spawn`] a
/// background one.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Bind `127.0.0.1:{port}` and prepare the pipeline (cache, batcher,
    /// precomputed scenario catalog).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        // std hard-codes a 128-entry listen backlog; a connection ramp
        // overflows it and every dropped SYN retransmits on a ~1s timer,
        // stretching the ramp past the idle timeout. Re-listening on the
        // bound socket deepens the queue (the kernel caps the value at
        // net.core.somaxconn), so this is sizing, not a failure path.
        #[cfg(target_os = "linux")]
        {
            use std::os::unix::io::AsRawFd;
            let _ = sss_exec::poll::deepen_listen_backlog(
                listener.as_raw_fd(),
                config.max_connections.clamp(128, 65_535) as i32,
            );
        }
        let cache = Arc::new(DecisionCache::new(config.cache_capacity));
        let batcher = Batcher::new(cache.clone(), config.workers, config.max_batch);
        let scenarios_body: Arc<str> = Arc::from(
            // Runs once at startup, before the listener serves: a panic
            // here is a failed boot, not a dropped connection.
            serde_json::to_string(&ScenariosResponse::bundled())
                .expect("scenario catalog serializes"), // sss-lint: allow(P001, bind-time panic is a failed boot, not a dropped connection)
        );
        #[allow(clippy::disallowed_methods)]
        // sss-lint: allow(D002, operator-facing /healthz uptime metric; never feeds simulation or decision output)
        let started = Instant::now();
        // The reactor's wake pipe is created at bind so an unsupported
        // platform fails the boot with a clear error instead of a dead
        // background accept thread.
        let waker = match config.frontend {
            Frontend::Reactor => Some(Arc::new(WakePipe::new().map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("reactor front end unavailable on this platform: {e}"),
                )
            })?)),
            Frontend::Threaded => None,
        };
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                cache,
                miss_pool: ThreadPool::new(config.workers),
                frontier_cache: ResponseCache::new(config.cache_capacity.min(FRONTIER_CACHE_CAP)),
                frontier_flight: SingleFlight::new(),
                simulate_cache: ResponseCache::new(config.cache_capacity.min(SIMULATE_CACHE_CAP)),
                simulate_flight: SingleFlight::new(),
                fleet_cache: ResponseCache::new(config.cache_capacity.min(FLEET_CACHE_CAP)),
                fleet_flight: SingleFlight::new(),
                batcher,
                scenarios_body,
                started,
                requests: AtomicU64::new(0),
                open_conns: AtomicU64::new(0),
                config,
                shutdown: Arc::new(AtomicBool::new(false)),
                waker,
            }),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        // A successfully bound TCP listener always has a local address;
        // failure here means the socket itself is gone — a failed boot.
        self.listener.local_addr().expect("listener bound") // sss-lint: allow(P001, bound listener always has a local address; failure is a failed boot)
    }

    /// Serve until [`ServerHandle::shutdown`] is called (from a handle
    /// created before `run`, via [`Server::handle`]) — or forever.
    ///
    /// Dispatches to the configured [`Frontend`]: the blocking
    /// thread-per-connection loop, or the nonblocking epoll reactor.
    pub fn run(self) -> std::io::Result<()> {
        match self.state.config.frontend {
            Frontend::Threaded => run_threaded(self.listener, self.state),
            Frontend::Reactor => {
                #[cfg(unix)]
                {
                    crate::reactor::run(self.listener, self.state)
                }
                #[cfg(not(unix))]
                {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::Unsupported,
                        "reactor front end requires epoll (Linux)",
                    ))
                }
            }
        }
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shutdown: self.state.shutdown.clone(),
            waker: self.state.waker.clone(),
            join: None,
        }
    }

    /// Serve on a background thread, returning the controlling handle.
    pub fn spawn(self) -> ServerHandle {
        let mut handle = self.handle();
        handle.join = Some(std::thread::spawn(move || {
            let _ = self.run();
        }));
        handle
    }
}

/// The threaded front end: one blocking OS thread per accepted
/// connection. Portable, and the reference the reactor is byte-compared
/// against.
fn run_threaded(listener: TcpListener, state: Arc<AppState>) -> std::io::Result<()> {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = state.clone();
        std::thread::spawn(move || handle_connection(stream, &state));
    }
    Ok(())
}

/// Controls a serving instance: address introspection and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Option<Arc<WakePipe>>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and (for spawned servers) join the
    /// accept thread. In-flight connections finish independently.
    ///
    /// The reactor observes the flag promptly: its `epoll_wait` is woken
    /// through the self-pipe (and bounded by `tick_ms` regardless). The
    /// threaded accept loop only re-checks the flag around a connection,
    /// so it is poked awake with a throwaway connect.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(waker) = &self.waker {
            waker.wake();
        } else if let Ok(stream) = TcpStream::connect(self.addr) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Per-connection loop: parse requests, route, write responses, until the
/// peer closes, errs, asks to close, or idles past the read timeout.
fn handle_connection(stream: TcpStream, state: &AppState) {
    state.open_conns.fetch_add(1, Ordering::Relaxed);
    // Decrement on every exit path, including a panicking route handler.
    struct Gauge<'a>(&'a AtomicU64);
    impl Drop for Gauge<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _gauge = Gauge(&state.open_conns);

    // Same nominal idle budget as the reactor's quiet-tick clock.
    let idle_ms = state
        .config
        .tick_ms
        .saturating_mul(state.config.idle_timeout_ticks);
    let _ = stream.set_read_timeout((idle_ms > 0).then(|| Duration::from_millis(idle_ms)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let close = request.close;
                let (status, body) = route(&request, state);
                if write_response(&mut writer, status, body.as_bytes(), !close).is_err() || close {
                    break;
                }
            }
            Ok(None) => break,              // clean close between requests
            Err(HttpError::Io(_)) => break, // timeout or dropped mid-request
            Err(e @ HttpError::Malformed(_)) => {
                let _ = respond_error(&mut writer, 400, &e.to_string());
                linger_close(&mut writer, &mut reader);
                break;
            }
            Err(e @ HttpError::TooLarge(_)) => {
                let _ = respond_error(&mut writer, 413, &e.to_string());
                linger_close(&mut writer, &mut reader);
                break;
            }
            Err(e @ HttpError::HeadersTooLarge(_)) => {
                let _ = respond_error(&mut writer, 431, &e.to_string());
                linger_close(&mut writer, &mut reader);
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// Most bytes an error teardown drains before giving up on a graceful
/// close (shared with the reactor front end).
pub(crate) const LINGER_CAP: usize = 1024 * 1024;

/// Lingering close after an error response: flush the response, send our
/// FIN, then drain whatever the client was still sending until it closes.
/// Closing with unread bytes in the receive buffer would turn into an RST
/// that can destroy the in-flight error response before the client reads
/// it. Bounded by [`LINGER_CAP`] and the connection's read timeout.
fn linger_close(writer: &mut BufWriter<TcpStream>, reader: &mut BufReader<TcpStream>) {
    if writer.flush().is_err() {
        return;
    }
    let _ = writer.get_ref().shutdown(Shutdown::Write);
    let mut drained = 0usize;
    let mut scratch = [0u8; 4096];
    while drained < LINGER_CAP {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Body served when response serialization itself fails — which the
/// vendored serde_json cannot do for these pure value types, but a panic
/// on a connection thread would silently drop the connection, so the
/// failure mode is an error body instead.
const SERIALIZE_ERROR_BODY: &str = r#"{"error":"internal: response serialization failed"}"#;

/// Serialize a response body, degrading to [`SERIALIZE_ERROR_BODY`]
/// instead of panicking the connection thread.
fn json_body<T: serde::Serialize>(value: &T) -> Arc<str> {
    match serde_json::to_string(value) {
        Ok(json) => Arc::from(json),
        Err(_) => Arc::from(SERIALIZE_ERROR_BODY),
    }
}

fn respond_error<W: Write>(writer: &mut W, status: u16, message: &str) -> std::io::Result<()> {
    let body = error_body(message.to_owned());
    write_response(writer, status, body.as_bytes(), false)
}

pub(crate) fn error_body(message: String) -> Arc<str> {
    json_body(&ErrorResponse { error: message })
}

/// Dispatch one request to its endpoint, producing status and JSON body.
/// Bodies are `Arc<str>` so the hot paths (cached `/decide` hits, the
/// precomputed `/scenarios` catalog) are served without copying them.
/// Shared verbatim by both front ends — the reason their responses are
/// byte-identical.
pub(crate) fn route(request: &Request, state: &AppState) -> (u16, Arc<str>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/decide") => handle_decide(&request.body, state),
        ("POST", "/tiers") => handle_tiers(&request.body),
        ("POST", "/frontier") => handle_frontier(&request.body, state),
        ("POST", "/simulate") => handle_simulate(&request.body, state),
        ("POST", "/fleet") => handle_fleet(&request.body, state),
        ("GET", "/scenarios") => (200, state.scenarios_body.clone()),
        ("GET", "/healthz") => handle_healthz(state),
        (
            _,
            "/decide" | "/tiers" | "/frontier" | "/simulate" | "/fleet" | "/scenarios" | "/healthz",
        ) => (
            405,
            error_body(format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        (_, path) => (404, error_body(format!("no such endpoint {path:?}"))),
    }
}

fn handle_decide(body: &[u8], state: &AppState) -> (u16, Arc<str>) {
    let params = match parse_workload(body) {
        Ok(p) => p,
        Err(msg) => return (400, error_body(msg)),
    };
    match state.batcher.submit(params) {
        Ok(body) => (200, body),
        Err(e) => (500, error_body(format!("internal: {e}"))),
    }
}

/// `POST /frontier`: parse the query, answer repeats from the memoized
/// body cache, and compute misses by fanning the frontier's grid rows and
/// boundary edges across a worker pool — the per-cell analogue of the
/// `/decide` batch wave. The computation is position-seeded, so the bytes
/// served are independent of worker count and of the hit/miss boundary.
fn handle_frontier(body: &[u8], state: &AppState) -> (u16, Arc<str>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8".into())),
    };
    let request: FrontierRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => return (400, error_body(format!("bad frontier request: {e}"))),
    };
    let job = match request.job() {
        Ok(job) => job,
        Err(e) => return (400, error_body(e)),
    };
    let key = FrontierKey::of(&request, job.base());
    let body = state.frontier_flight.serve(&state.frontier_cache, key, || {
        let map = job.run(&state.miss_pool);
        json_body(&map)
    });
    (200, body)
}

/// `POST /simulate`: replay the workload through the event-driven
/// simulator under the requested trace shapes, memoizing whole response
/// bodies in [`AppState::simulate_cache`]. The replay is position-seeded
/// and the cells fan across the worker pool, so the bytes served are
/// independent of worker count and of the hit/miss boundary.
fn handle_simulate(body: &[u8], state: &AppState) -> (u16, Arc<str>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8".into())),
    };
    let request: SimulateRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => return (400, error_body(format!("bad simulate request: {e}"))),
    };
    let replay = match request.replay() {
        Ok(replay) => replay,
        Err(e) => return (400, error_body(e)),
    };
    let key = SimulateKey::of(&request, &replay.scenarios()[0].params);
    let body = state.simulate_flight.serve(&state.simulate_cache, key, || {
        let report = replay.run(&state.miss_pool);
        json_body(&report)
    });
    (200, body)
}

/// `POST /fleet`: replay a multi-tenant fleet of catalog sessions under
/// WAN sharing and DTN slot contention, memoizing whole response bodies
/// in [`AppState::fleet_cache`]. The fleet is position-seeded and its
/// per-session movement replays fan across the worker pool, so the bytes
/// served are independent of worker count and of the hit/miss boundary.
fn handle_fleet(body: &[u8], state: &AppState) -> (u16, Arc<str>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8".into())),
    };
    let request: FleetRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => return (400, error_body(format!("bad fleet request: {e}"))),
    };
    let fleet = match request.fleet(state.config.fleet_session_cap) {
        Ok(fleet) => fleet,
        Err(e) => return (400, error_body(e)),
    };
    let key = FleetKey::of(&request);
    let served = state
        .fleet_flight
        .serve_fallible(&state.fleet_cache, key, || {
            match fleet.run(&state.miss_pool) {
                Ok(report) => Ok(json_body(&report)),
                // Unreachable by construction (the engine only fails on a
                // self-composed trace its own kernel rejects), but a 500
                // body must not be memoized as this key's answer.
                Err(e) => Err(error_body(format!("internal: {e}"))),
            }
        });
    match served {
        Ok(body) => (200, body),
        Err(body) => (500, body),
    }
}

fn handle_tiers(body: &[u8]) -> (u16, Arc<str>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8".into())),
    };
    let request: TiersRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => return (400, error_body(format!("bad tiers request: {e}"))),
    };
    if !request.sss.is_finite() || request.sss < 1.0 {
        return (
            400,
            error_body(format!("sss must be >= 1, got {}", request.sss)),
        );
    }
    let params = match request.workload.params() {
        Ok(p) => p,
        Err(e) => return (400, error_body(e.to_string())),
    };
    let response = crate::api::TiersResponse::evaluate(&params, Ratio::new(request.sss));
    (200, json_body(&response))
}

fn handle_healthz(state: &AppState) -> (u16, Arc<str>) {
    let health = Health {
        status: "ok".to_owned(),
        uptime_s: state.started.elapsed().as_secs_f64(),
        requests: state.requests.load(Ordering::Relaxed),
        workers: state.config.workers,
        max_batch: state.config.max_batch,
        frontend: state.config.frontend.to_string(),
        open_connections: state.open_conns.load(Ordering::Relaxed),
        cache: state.cache.stats(),
        batch: state.batcher.stats(),
        frontier_cache: state.frontier_cache.stats(),
        simulate_cache: state.simulate_cache.stats(),
        fleet_cache: state.fleet_cache.stats(),
        fleet_session_cap: state.config.fleet_session_cap,
    };
    (200, json_body(&health))
}

/// Parse and validate a `/decide` body into model parameters.
fn parse_workload(body: &[u8]) -> Result<sss_core::ModelParams, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let request: crate::api::DecideRequest =
        serde_json::from_str(text).map_err(|e| format!("bad decide request: {e}"))?;
    request.params().map_err(|e| e.to_string())
}
