//! The TCP accept loop, request router, and lifecycle handle.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sss_units::Ratio;

use crate::api::{ErrorResponse, ScenariosResponse, TiersRequest};
use crate::batch::{BatchStats, Batcher};
use crate::cache::{CacheStats, DecisionCache};
use crate::http::{read_request, write_response, HttpError, Request};

/// How the service is sized. `Default` is a sensible interactive setup:
/// an OS-assigned port, one worker per core, a 4096-entry cache and
/// 32-request batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// TCP port to bind on `127.0.0.1` (0 = let the OS pick).
    pub port: u16,
    /// Worker threads evaluating `/decide` batches.
    pub workers: usize,
    /// Decision-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum `/decide` requests evaluated per pool wave.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 4096,
            max_batch: 32,
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct AppState {
    cache: Arc<DecisionCache>,
    batcher: Batcher,
    scenarios_body: Arc<str>,
    started: Instant,
    requests: AtomicU64,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// The `/healthz` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Health {
    /// Always `"ok"` while the service answers.
    pub status: String,
    /// Seconds since the listener was bound.
    pub uptime_s: f64,
    /// Requests handled across all endpoints.
    pub requests: u64,
    /// Worker threads configured for `/decide` batches.
    pub workers: usize,
    /// Maximum batch size configured.
    pub max_batch: usize,
    /// Decision-cache counters.
    pub cache: CacheStats,
    /// Batching counters.
    pub batch: BatchStats,
}

/// A bound-but-not-yet-serving instance: inspect [`Server::local_addr`],
/// then either [`Server::run`] on this thread or [`Server::spawn`] a
/// background one.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
}

impl Server {
    /// Bind `127.0.0.1:{port}` and prepare the pipeline (cache, batcher,
    /// precomputed scenario catalog).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let cache = Arc::new(DecisionCache::new(config.cache_capacity));
        let batcher = Batcher::new(cache.clone(), config.workers, config.max_batch);
        let scenarios_body: Arc<str> = Arc::from(
            serde_json::to_string(&ScenariosResponse::bundled())
                .expect("scenario catalog serializes"),
        );
        Ok(Server {
            listener,
            state: Arc::new(AppState {
                cache,
                batcher,
                scenarios_body,
                started: Instant::now(),
                requests: AtomicU64::new(0),
                config,
                shutdown: Arc::new(AtomicBool::new(false)),
            }),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener bound")
    }

    /// Serve until [`ServerHandle::shutdown`] is called (from a handle
    /// created before `run`, via [`Server::handle`]) — or forever.
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        for stream in self.listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = state.clone();
            std::thread::spawn(move || handle_connection(stream, &state));
        }
        Ok(())
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            shutdown: self.state.shutdown.clone(),
            join: None,
        }
    }

    /// Serve on a background thread, returning the controlling handle.
    pub fn spawn(self) -> ServerHandle {
        let mut handle = self.handle();
        handle.join = Some(std::thread::spawn(move || {
            let _ = self.run();
        }));
        handle
    }
}

/// Controls a serving instance: address introspection and shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The served address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and (for spawned servers) join the
    /// accept thread. In-flight connections finish independently.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop only observes the flag on its next connection:
        // poke it awake.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Per-connection loop: parse requests, route, write responses, until the
/// peer closes, errs, asks to close, or idles past the read timeout.
fn handle_connection(stream: TcpStream, state: &AppState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let close = request.close;
                let (status, body) = route(&request, state);
                if write_response(&mut writer, status, body.as_bytes(), !close).is_err() || close {
                    break;
                }
            }
            Ok(None) => break,              // clean close between requests
            Err(HttpError::Io(_)) => break, // timeout or dropped mid-request
            Err(e @ HttpError::Malformed(_)) => {
                let _ = respond_error(&mut writer, 400, &e.to_string());
                break;
            }
            Err(e @ HttpError::TooLarge(_)) => {
                let _ = respond_error(&mut writer, 413, &e.to_string());
                break;
            }
        }
    }
    let _ = writer.flush();
}

fn respond_error<W: Write>(writer: &mut W, status: u16, message: &str) -> std::io::Result<()> {
    let body = serde_json::to_string(&ErrorResponse {
        error: message.to_owned(),
    })
    .expect("error body serializes");
    write_response(writer, status, body.as_bytes(), false)
}

fn error_body(message: String) -> Arc<str> {
    Arc::from(
        serde_json::to_string(&ErrorResponse { error: message }).expect("error body serializes"),
    )
}

/// Dispatch one request to its endpoint, producing status and JSON body.
/// Bodies are `Arc<str>` so the hot paths (cached `/decide` hits, the
/// precomputed `/scenarios` catalog) are served without copying them.
fn route(request: &Request, state: &AppState) -> (u16, Arc<str>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/decide") => handle_decide(&request.body, state),
        ("POST", "/tiers") => handle_tiers(&request.body),
        ("GET", "/scenarios") => (200, state.scenarios_body.clone()),
        ("GET", "/healthz") => handle_healthz(state),
        (_, "/decide" | "/tiers" | "/scenarios" | "/healthz") => (
            405,
            error_body(format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        (_, path) => (404, error_body(format!("no such endpoint {path:?}"))),
    }
}

fn handle_decide(body: &[u8], state: &AppState) -> (u16, Arc<str>) {
    let params = match parse_workload(body) {
        Ok(p) => p,
        Err(msg) => return (400, error_body(msg)),
    };
    (200, state.batcher.submit(params))
}

fn handle_tiers(body: &[u8]) -> (u16, Arc<str>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, error_body("body is not UTF-8".into())),
    };
    let request: TiersRequest = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => return (400, error_body(format!("bad tiers request: {e}"))),
    };
    if !request.sss.is_finite() || request.sss < 1.0 {
        return (
            400,
            error_body(format!("sss must be >= 1, got {}", request.sss)),
        );
    }
    let params = match request.workload.params() {
        Ok(p) => p,
        Err(e) => return (400, error_body(e.to_string())),
    };
    let response = crate::api::TiersResponse::evaluate(&params, Ratio::new(request.sss));
    (
        200,
        Arc::from(serde_json::to_string(&response).expect("tiers body serializes")),
    )
}

fn handle_healthz(state: &AppState) -> (u16, Arc<str>) {
    let health = Health {
        status: "ok".to_owned(),
        uptime_s: state.started.elapsed().as_secs_f64(),
        requests: state.requests.load(Ordering::Relaxed),
        workers: state.config.workers,
        max_batch: state.config.max_batch,
        cache: state.cache.stats(),
        batch: state.batcher.stats(),
    };
    (
        200,
        Arc::from(serde_json::to_string(&health).expect("health body serializes")),
    )
}

/// Parse and validate a `/decide` body into model parameters.
fn parse_workload(body: &[u8]) -> Result<sss_core::ModelParams, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let request: crate::api::DecideRequest =
        serde_json::from_str(text).map_err(|e| format!("bad decide request: {e}"))?;
    request.params().map_err(|e| e.to_string())
}
