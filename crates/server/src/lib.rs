//! Always-on HTTP/JSON decision service over the stream-score model.
//!
//! The paper frames stream-vs-store as a question a facility asks *per
//! request*, continuously — not once. This crate turns the analytic model
//! into a long-running advisor: a pure-`std` HTTP/1.1 server (hand-rolled
//! parsing over `TcpListener`, no external dependencies) whose request
//! path is built for repeated traffic:
//!
//! ```text
//! connection threads ──▶ Batcher queue ──▶ dispatcher ──▶ ThreadPool wave
//!                                              │
//!                                   DecisionCache (sharded, memoized)
//! ```
//!
//! * [`server::Server`] — accept loop and router for `POST /decide`,
//!   `POST /tiers`, `POST /frontier`, `POST /simulate`, `GET /scenarios`
//!   and `GET /healthz`.
//! * [`batch::Batcher`] — micro-batches concurrent `/decide` bodies and
//!   evaluates each wave of cache misses in one [`sss_exec::ThreadPool`]
//!   fan-out. `/frontier` requests fan their grid rows and boundary edges
//!   across the same pool size, and memoize whole response bodies.
//! * [`cache::ResponseCache`] — sharded body memoization; the
//!   [`cache::DecisionCache`] instance keys `/decide` on quantized
//!   [`ModelParams`](sss_core::ModelParams), a second instance keys
//!   `/frontier` on the full query. Repeat queries are answered from
//!   memory with the exact bytes the first evaluation produced.
//! * [`api`] — the JSON request/response types, in the paper's own units.
//!
//! # Example
//!
//! Start a server on an OS-assigned port and ask it about the paper's
//! Table 3 coherent-scattering workload:
//!
//! ```
//! use std::io::{Read, Write};
//! use sss_server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     port: 0,
//!     workers: 2,
//!     cache_capacity: 64,
//!     max_batch: 8,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let body = r#"{"data_gb":2.0,"intensity_tflop_per_gb":17.0,"local_tflops":10.0,
//!                "remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8}"#;
//! let mut stream = std::net::TcpStream::connect(addr).unwrap();
//! write!(
//!     stream,
//!     "POST /decide HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut response = String::new();
//! stream.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK"));
//! assert!(response.contains("RemoteStream"));
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod batch;
pub mod cache;
#[cfg(unix)]
mod conn;
pub mod http;
#[cfg(unix)]
mod reactor;
pub mod server;

pub use api::{
    DecideRequest, DecideResponse, ErrorResponse, FrontierRequest, ScenarioEntry,
    ScenariosResponse, SimulateRequest, TiersRequest, TiersResponse,
};
pub use batch::{BatchStats, Batcher};
pub use cache::{CacheKey, CacheStats, DecisionCache, ResponseCache};
pub use server::{Frontend, Health, Server, ServerConfig, ServerHandle};
