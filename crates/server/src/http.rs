//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal — the service speaks a small, fixed dialect
//! (JSON bodies, `Content-Length` framing, persistent connections) and
//! the container has no HTTP crate to lean on. The parser enforces hard
//! limits on header and body sizes so a misbehaving client cannot balloon
//! a connection thread's memory.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line/header-line length, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted body size, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-request.
    Io(io::Error),
    /// The bytes on the wire are not a well-formed request.
    Malformed(String),
    /// The request exceeds a parser limit ("413 Payload Too Large").
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (`/decide`), query string stripped.
    pub path: String,
    /// Header name/value pairs in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub close: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one line terminated by `\r\n` (tolerating bare `\n`), bounded by
/// [`MAX_LINE`]. Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::with_capacity(128);
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("EOF mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))?;
                    return Ok(Some(text));
                }
                if line.len() >= MAX_LINE {
                    return Err(HttpError::TooLarge(format!(
                        "line exceeds {MAX_LINE} bytes"
                    )));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read one request off the connection.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (the normal end of a keep-alive session).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(request_line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line =
            read_line(reader)?.ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => version == "HTTP/1.0",
    };

    let path = target.split('?').next().unwrap_or("").to_owned();
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
        close,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one JSON response, framing the body with `Content-Length`.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /decide HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/decide");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn strips_query_string() {
        let req = parse(b"GET /scenarios?limit=3 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/scenarios");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn connection_close_honored() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.close);
        let old = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(old.close, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn bad_request_line_rejected() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let text = format!(
            "POST /decide HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(text.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST /decide HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_has_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
