//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal — the service speaks a small, fixed dialect
//! (JSON bodies, `Content-Length` framing, persistent connections) and
//! the container has no HTTP crate to lean on. The parser enforces hard
//! limits on header and body sizes so a misbehaving client cannot balloon
//! a connection's memory.
//!
//! The core is the *incremental* [`Parser`]: feed it whatever bytes the
//! socket produced and it consumes exactly up to the end of one complete
//! request, carrying partial state (a request line split mid-word, a body
//! split mid-`Content-Length`) across calls. That single state machine
//! serves both front ends: the reactor pushes nonblocking read chunks
//! straight into it, and the blocking [`read_request`] wraps it over a
//! `BufRead`.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line/header-line length, bytes.
pub const MAX_LINE: usize = 8 * 1024;
/// Maximum number of header lines.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted body size, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection failed mid-request.
    Io(io::Error),
    /// The bytes on the wire are not a well-formed request.
    Malformed(String),
    /// The request body exceeds [`MAX_BODY`] ("413 Payload Too Large").
    TooLarge(String),
    /// The request line or header section exceeds a parser limit
    /// ("431 Request Header Fields Too Large").
    HeadersTooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
            HttpError::HeadersTooLarge(m) => write!(f, "request headers too large: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (`/decide`), query string stripped.
    pub path: String,
    /// Header name/value pairs in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub close: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Where an incremental parse currently stands — used to classify an EOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePhase {
    /// Between requests: no byte of the next request has arrived. EOF here
    /// is the clean end of a keep-alive session.
    Idle,
    /// Mid request-line or mid-headers. EOF here is a malformed request.
    Head,
    /// Mid body (`Content-Length` bytes still owed). EOF here is a
    /// truncated transfer — an I/O-level failure.
    Body,
}

/// Header-section fields accumulated before the body arrives.
#[derive(Debug, Default)]
struct Head {
    method: String,
    target: String,
    version: String,
    headers: Vec<(String, String)>,
}

#[derive(Debug)]
enum State {
    /// Accumulating the request line.
    Line(Vec<u8>),
    /// Accumulating header lines; the partial current line rides along.
    Headers(Head, Vec<u8>),
    /// Accumulating exactly `remaining` more body bytes.
    Body(Head, Vec<u8>, usize),
}

/// Incremental HTTP/1.1 request parser.
///
/// [`Parser::push`] consumes bytes from the front of the input and stops
/// at the end of the first complete request, returning how much it took —
/// the caller re-pushes the remainder (pipelined follow-up requests) on
/// its next iteration. All partial state lives inside the parser, so reads
/// may split the stream anywhere: mid request-line, between header bytes,
/// or in the middle of a counted body.
///
/// After an error the parser is poisoned; the owning connection is
/// expected to answer with the matching status and tear down.
#[derive(Debug)]
pub struct Parser {
    state: State,
}

impl Default for Parser {
    fn default() -> Self {
        Self::new()
    }
}

impl Parser {
    /// A parser at the boundary between requests.
    pub fn new() -> Self {
        Parser {
            state: State::Line(Vec::new()),
        }
    }

    /// Which phase the parser is in — classifies an EOF from the peer.
    pub fn phase(&self) -> ParsePhase {
        match &self.state {
            State::Line(buf) if buf.is_empty() => ParsePhase::Idle,
            State::Line(_) | State::Headers(..) => ParsePhase::Head,
            State::Body(..) => ParsePhase::Body,
        }
    }

    /// Feed `data`; returns `(consumed, request)`. Consumption stops at
    /// the end of the first complete request so pipelined successors stay
    /// in the caller's buffer. Always consumes at least one byte when
    /// `data` is non-empty and no request completes.
    pub fn push(&mut self, data: &[u8]) -> Result<(usize, Option<Request>), HttpError> {
        let mut used = 0;
        while used < data.len() {
            match &mut self.state {
                State::Line(line) => {
                    match take_line(line, &data[used..])? {
                        LineStep::Partial(n) => used += n,
                        LineStep::Complete(n) => {
                            used += n;
                            let text = finish_line(line)?;
                            let head = parse_request_line(&text)?;
                            self.state = State::Headers(head, Vec::new());
                        }
                    };
                }
                State::Headers(head, line) => {
                    match take_line(line, &data[used..])? {
                        LineStep::Partial(n) => used += n,
                        LineStep::Complete(n) => {
                            used += n;
                            let text = finish_line(line)?;
                            if text.is_empty() {
                                // End of headers: frame the body.
                                let remaining = content_length(head)?;
                                let head = std::mem::take(head);
                                if remaining == 0 {
                                    self.state = State::Line(Vec::new());
                                    return Ok((used, Some(build_request(head, Vec::new()))));
                                }
                                self.state =
                                    State::Body(head, Vec::with_capacity(remaining), remaining);
                            } else {
                                if head.headers.len() >= MAX_HEADERS {
                                    return Err(HttpError::HeadersTooLarge(format!(
                                        "more than {MAX_HEADERS} headers"
                                    )));
                                }
                                let (name, value) = text.split_once(':').ok_or_else(|| {
                                    HttpError::Malformed(format!("bad header line {text:?}"))
                                })?;
                                head.headers.push((
                                    name.trim().to_ascii_lowercase(),
                                    value.trim().to_owned(),
                                ));
                            }
                        }
                    };
                }
                State::Body(head, body, remaining) => {
                    let take = (data.len() - used).min(*remaining);
                    body.extend_from_slice(&data[used..used + take]);
                    used += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        let head = std::mem::take(head);
                        let body = std::mem::take(body);
                        self.state = State::Line(Vec::new());
                        return Ok((used, Some(build_request(head, body))));
                    }
                }
            }
        }
        Ok((used, None))
    }
}

enum LineStep {
    /// All input consumed, newline not yet seen.
    Partial(usize),
    /// Consumed through a newline; `line` holds the full line (no `\n`).
    Complete(usize),
}

/// Append input to `line` up to and including the first `\n`, enforcing
/// [`MAX_LINE`] even when no newline has arrived yet.
fn take_line(line: &mut Vec<u8>, data: &[u8]) -> Result<LineStep, HttpError> {
    let (chunk, step) = match data.iter().position(|&b| b == b'\n') {
        Some(pos) => (&data[..pos], LineStep::Complete(pos + 1)),
        None => (data, LineStep::Partial(data.len())),
    };
    if line.len() + chunk.len() > MAX_LINE {
        return Err(HttpError::HeadersTooLarge(format!(
            "line exceeds {MAX_LINE} bytes"
        )));
    }
    line.extend_from_slice(chunk);
    Ok(step)
}

/// Terminate a completed line: strip the optional `\r`, decode UTF-8, and
/// reset the accumulator for the next line.
fn finish_line(line: &mut Vec<u8>) -> Result<String, HttpError> {
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(std::mem::take(line))
        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))
}

fn parse_request_line(text: &str) -> Result<Head, HttpError> {
    let mut parts = text.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => return Err(HttpError::Malformed(format!("bad request line {text:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("bad version {version:?}")));
    }
    Ok(Head {
        method,
        target,
        version,
        headers: Vec::new(),
    })
}

fn content_length(head: &Head) -> Result<usize, HttpError> {
    let length = match head.headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if length > MAX_BODY {
        return Err(HttpError::TooLarge(format!(
            "body of {length} bytes exceeds {MAX_BODY}"
        )));
    }
    Ok(length)
}

fn build_request(head: Head, body: Vec<u8>) -> Request {
    let connection = head
        .headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => head.version == "HTTP/1.0",
    };
    let path = head.target.split('?').next().unwrap_or("").to_owned();
    Request {
        method: head.method,
        path,
        headers: head.headers,
        body,
        close,
    }
}

/// Read one request off a blocking connection.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (the normal end of a keep-alive session). Drives the same
/// incremental [`Parser`] the reactor uses, consuming from the `BufRead`
/// buffer only up to the end of the request so pipelined successors stay
/// buffered for the next call.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut parser = Parser::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return match parser.phase() {
                ParsePhase::Idle => Ok(None),
                ParsePhase::Head => Err(HttpError::Malformed("EOF mid-request".into())),
                ParsePhase::Body => Err(HttpError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside counted body",
                ))),
            };
        }
        let (consumed, request) = match parser.push(available) {
            Ok(step) => step,
            Err(e) => {
                // The request is doomed either way; consuming what the
                // parser examined keeps the reader consistent for the
                // error response that follows.
                let n = available.len();
                reader.consume(n);
                return Err(e);
            }
        };
        reader.consume(consumed);
        if let Some(request) = request {
            return Ok(Some(request));
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one JSON response, framing the body with `Content-Length`.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(b"POST /decide HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/decide");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn strips_query_string() {
        let req = parse(b"GET /scenarios?limit=3 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/scenarios");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn connection_close_honored() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.close);
        let old = parse(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(old.close, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn bad_request_line_rejected() {
        assert!(matches!(
            parse(b"NONSENSE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let text = format!(
            "POST /decide HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(text.as_bytes()),
            Err(HttpError::TooLarge(_))
        ));
    }

    #[test]
    fn oversized_header_line_is_431() {
        let text = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "y".repeat(MAX_LINE));
        assert!(matches!(
            parse(text.as_bytes()),
            Err(HttpError::HeadersTooLarge(_))
        ));
    }

    #[test]
    fn oversized_header_line_detected_before_newline() {
        // The overlong line never terminates; the parser must still bail
        // rather than buffer without bound.
        let mut parser = Parser::new();
        parser.push(b"GET / HTTP/1.1\r\n").unwrap();
        let err = parser.push(&vec![b'a'; MAX_LINE + 1]).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge(_)));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut text = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            text.push_str(&format!("x-h{i}: v\r\n"));
        }
        text.push_str("\r\n");
        assert!(matches!(
            parse(text.as_bytes()),
            Err(HttpError::HeadersTooLarge(_))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST /decide HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn eof_mid_headers_is_malformed() {
        assert!(matches!(
            parse(b"POST /decide HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(parse(b"POST /dec"), Err(HttpError::Malformed(_))));
    }

    // --- incremental Parser behavior -------------------------------------

    /// Feed `wire` one byte at a time: every possible split boundary at once.
    fn parse_bytewise(wire: &[u8]) -> Request {
        let mut parser = Parser::new();
        for (i, b) in wire.iter().enumerate() {
            let (used, request) = parser.push(std::slice::from_ref(b)).unwrap();
            assert_eq!(used, 1, "byte {i} must be consumed");
            if let Some(request) = request {
                assert_eq!(i, wire.len() - 1, "completed early at byte {i}");
                return request;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn bytewise_split_equals_single_push() {
        let wire = b"POST /decide HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = Parser::new();
        let (used, whole) = parser.push(wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(whole.unwrap(), parse_bytewise(wire));
    }

    #[test]
    fn split_mid_request_line_and_mid_body() {
        let mut parser = Parser::new();
        assert_eq!(parser.phase(), ParsePhase::Idle);
        let (_, r) = parser.push(b"POST /dec").unwrap();
        assert!(r.is_none());
        assert_eq!(parser.phase(), ParsePhase::Head);
        let (_, r) = parser
            .push(b"ide HTTP/1.1\r\ncontent-length: 6\r\n\r\nab")
            .unwrap();
        assert!(r.is_none());
        assert_eq!(parser.phase(), ParsePhase::Body);
        let (used, r) = parser.push(b"cdef").unwrap();
        assert_eq!(used, 4);
        let request = r.unwrap();
        assert_eq!(request.body, b"abcdef");
        assert_eq!(parser.phase(), ParsePhase::Idle);
    }

    #[test]
    fn pipelined_requests_consume_one_at_a_time() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /decide HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let mut parser = Parser::new();
        let (used, first) = parser.push(wire).unwrap();
        let first = first.unwrap();
        assert_eq!(first.path, "/healthz");
        assert!(used < wire.len(), "must stop at the request boundary");
        let (used2, second) = parser.push(&wire[used..]).unwrap();
        assert_eq!(used + used2, wire.len());
        let second = second.unwrap();
        assert_eq!(second.path, "/decide");
        assert_eq!(second.body, b"hi");
    }

    #[test]
    fn bare_newlines_accepted() {
        let req = parse_bytewise(b"GET /scenarios HTTP/1.1\nHost: x\n\n");
        assert_eq!(req.path, "/scenarios");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn response_has_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn status_431_has_reason_phrase() {
        let mut out = Vec::new();
        write_response(&mut out, 431, b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
            "{text}"
        );
    }
}
