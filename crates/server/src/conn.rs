//! Per-connection state machine for the reactor front end.
//!
//! Each [`Conn`] owns a nonblocking socket and carries everything the
//! event loop needs between readiness notifications: the incremental
//! [`Parser`] (bytes may split anywhere), a pending-response write buffer
//! drained as the socket accepts bytes, and the pipelining bookkeeping
//! that keeps responses in request order even though the service threads
//! complete them in whatever order the routes take.
//!
//! Sequencing: every parsed request is assigned a monotonically increasing
//! sequence number at dispatch. Completions arriving out of order are
//! parked; [`Conn::deliver`] encodes a response only when it is the next
//! one the wire expects, then drains any parked successors. A response
//! flagged `close` (client `Connection: close`, or a parse-error teardown)
//! seals the stream: later sequences are discarded and the connection is
//! retired once the buffer flushes.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

use crate::http::{write_response, HttpError, Parser, Request};
use crate::server::LINGER_CAP;

/// Most requests a connection may have in flight (dispatched, response not
/// yet written) before the reactor stops reading from it. Bounds per-
/// connection memory under aggressive pipelining without a config knob —
/// the cap is about protocol abuse, not tuning.
pub(crate) const MAX_PIPELINE: usize = 64;

/// What [`Conn::read_ready`] observed on the socket.
pub(crate) enum ReadOutcome {
    /// Zero or more complete requests were parsed; dispatch them in order.
    Requests(Vec<Request>),
    /// The bytes violated HTTP or a parser limit. Complete requests parsed
    /// *before* the offending bytes ride along and must still be
    /// dispatched; the error response itself is synthesized by the caller
    /// and sequenced after them.
    Bad(Vec<Request>, HttpError),
    /// The socket failed hard (reset, unexpected error): retire silently.
    Dead,
}

/// One nonblocking connection's full state.
pub(crate) struct Conn {
    stream: TcpStream,
    parser: Parser,
    /// Encoded-but-unsent response bytes; `out_pos` marks how far the
    /// socket has accepted.
    out: Vec<u8>,
    out_pos: usize,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Sequence number the wire expects next.
    next_write: u64,
    /// Completions that arrived ahead of `next_write`.
    parked: Vec<Parked>,
    /// Dispatched requests whose completion has not yet arrived.
    inflight: usize,
    /// Peer half-closed its sending side (EOF observed).
    read_closed: bool,
    /// Stop parsing/dispatching: a `Connection: close` request or a parse
    /// error is already in the response stream.
    sealed: bool,
    /// Set once a `close`-flagged response is encoded; later sequences
    /// are discarded and the connection retires after the flush.
    close_sent: bool,
    /// Lingering close: an error response is on its way out, and closing
    /// with unread request bytes would RST it off the wire before the
    /// client reads it. Keep reading and discarding until the peer
    /// closes (or [`LINGER_CAP`] is exhausted).
    draining: bool,
    /// Our FIN went out (write side shut down after the final flush).
    fin_sent: bool,
    /// Bytes discarded while draining.
    drained: usize,
    /// Quiet epoll ticks accumulated while fully idle.
    pub(crate) idle_ticks: u64,
    /// Interest set currently registered with the poller, as
    /// `(readable, writable)` — used to skip redundant `epoll_ctl`s.
    pub(crate) registered: (bool, bool),
}

struct Parked {
    seq: u64,
    status: u16,
    body: Arc<str>,
    close: bool,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            parser: Parser::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            parked: Vec::new(),
            inflight: 0,
            read_closed: false,
            sealed: false,
            close_sent: false,
            draining: false,
            fin_sent: false,
            drained: 0,
            idle_ticks: 0,
            registered: (true, false),
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Assign the next response slot in wire order.
    pub(crate) fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Note a dispatched request (completion pending).
    pub(crate) fn job_started(&mut self) {
        self.inflight += 1;
    }

    /// Note a completion's arrival (before [`Conn::deliver`]).
    pub(crate) fn job_finished(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
    }

    /// Stop parsing and dispatching from this connection — the response
    /// stream already ends in a `close`.
    pub(crate) fn seal(&mut self) {
        self.sealed = true;
    }

    /// Enter lingering close: the teardown response must reach the client
    /// before the socket drops, so reads continue (and are discarded)
    /// until the peer closes its side.
    pub(crate) fn start_drain(&mut self) {
        self.draining = true;
    }

    /// Too much pending state: stop draining the socket until responses
    /// flush. `write_buffer` is the configured per-connection ceiling on
    /// encoded-but-unsent bytes.
    pub(crate) fn paused(&self, write_buffer: usize) -> bool {
        self.inflight >= MAX_PIPELINE || self.out.len() - self.out_pos > write_buffer
    }

    /// Whether the poller should watch for readability.
    pub(crate) fn wants_read(&self, write_buffer: usize) -> bool {
        if self.draining {
            return !self.read_closed;
        }
        !self.read_closed && !self.sealed && !self.paused(write_buffer)
    }

    /// Whether the poller should watch for writability.
    pub(crate) fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The connection has served its purpose and the buffer is on the
    /// wire: retire it.
    pub(crate) fn done(&self) -> bool {
        let flushed = !self.wants_write();
        if self.close_sent {
            // A draining teardown waits for the peer's close so the error
            // response leaves as data + FIN, never as an RST.
            return flushed && (!self.draining || self.read_closed);
        }
        flushed && self.read_closed && self.inflight == 0 && self.parked.is_empty()
    }

    /// Fully idle (nothing pending in either direction) — eligible for
    /// the idle-timeout clock. A draining teardown counts as idle so a
    /// peer that never closes is still reaped by the tick clock.
    pub(crate) fn idle(&self) -> bool {
        self.inflight == 0 && !self.wants_write() && (self.parser_idle() || self.draining)
    }

    fn parser_idle(&self) -> bool {
        self.parser.phase() == crate::http::ParsePhase::Idle
    }

    /// Drain the readable socket through the incremental parser.
    ///
    /// Reads at most a few `scratch`-fuls before yielding so one chatty
    /// peer cannot monopolize the event loop, and stops early when the
    /// connection pauses (pipelining cap or write backlog).
    pub(crate) fn read_ready(&mut self, scratch: &mut [u8], write_buffer: usize) -> ReadOutcome {
        if self.draining {
            return self.drain_ready(scratch);
        }
        let mut requests = Vec::new();
        // 4 scratch-fuls ≈ 32 KiB per readiness event at the default
        // read_buffer: enough to drain a burst, bounded for fairness.
        for _ in 0..4 {
            if self.sealed || self.paused(write_buffer) {
                break;
            }
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    let mut offset = 0;
                    while offset < n {
                        match self.parser.push(&scratch[offset..n]) {
                            Ok((used, parsed)) => {
                                offset += used;
                                if let Some(request) = parsed {
                                    if request.close {
                                        self.seal();
                                    }
                                    requests.push(request);
                                    if self.sealed {
                                        break;
                                    }
                                }
                            }
                            Err(error) => return ReadOutcome::Bad(requests, error),
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Dead,
            }
        }
        ReadOutcome::Requests(requests)
    }

    /// Lingering-close read path: discard whatever the peer still sends
    /// until it closes. Exceeding [`LINGER_CAP`] means the peer is
    /// streaming, not finishing — give up on the graceful close.
    fn drain_ready(&mut self, scratch: &mut [u8]) -> ReadOutcome {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.drained += n;
                    if self.drained > LINGER_CAP {
                        return ReadOutcome::Dead;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Dead,
            }
        }
        ReadOutcome::Requests(Vec::new())
    }

    /// Hand a completed response to the connection. Encodes immediately
    /// when `seq` is the next the wire expects (draining any parked
    /// successors), parks it otherwise, and discards it when the stream
    /// is already sealed by an earlier `close` response.
    pub(crate) fn deliver(&mut self, seq: u64, status: u16, body: Arc<str>, close: bool) {
        if self.close_sent || seq < self.next_write {
            return; // sealed or stale: the wire will never carry it
        }
        if seq == self.next_write {
            self.encode(status, &body, close);
            self.drain_parked();
        } else {
            self.parked.push(Parked {
                seq,
                status,
                body,
                close,
            });
        }
    }

    fn drain_parked(&mut self) {
        while !self.close_sent {
            let Some(at) = self.parked.iter().position(|p| p.seq == self.next_write) else {
                break;
            };
            let parked = self.parked.swap_remove(at);
            self.encode(parked.status, &parked.body, parked.close);
        }
    }

    fn encode(&mut self, status: u16, body: &str, close: bool) {
        // Writing into a Vec cannot fail; the signature is io-flavored
        // because the same encoder serves the blocking front end.
        let _ = write_response(&mut self.out, status, body.as_bytes(), !close);
        self.next_write += 1;
        if close {
            self.close_sent = true;
            self.sealed = true;
            self.parked.clear();
        }
    }

    /// Push buffered response bytes to the socket until it would block.
    /// `Err` means the peer is gone and the connection should be retired.
    pub(crate) fn flush_ready(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
            if self.close_sent && self.draining && !self.fin_sent {
                // The teardown response is fully on the wire: send our
                // FIN so the client sees clean EOF while we keep
                // draining its unread bytes.
                let _ = self.stream.shutdown(Shutdown::Write);
                self.fin_sent = true;
            }
        } else if self.out_pos > 64 * 1024 {
            // Large partial flush: reclaim the sent prefix so a slow
            // reader cannot pin the whole history of its responses.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}
