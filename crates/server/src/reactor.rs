//! Nonblocking epoll reactor front end: one event-loop thread, C10k+.
//!
//! The threaded front end spends an OS thread per connection; this one
//! spends a [`sss_exec::poll::Poller`] registration. A single thread
//! drives the whole socket population:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!                    │              epoll set (level-triggered)   │
//!                    │  listener ─ wake pipe ─ conn fds (slab)    │
//!                    └──────┬──────────▲──────────────┬───────────┘
//!        accept, nonblocking│          │wake()        │readable/writable
//!                           ▼          │              ▼
//!                    ┌────────────┐    │      ┌────────────────┐
//!                    │ Conn slab  │    │      │ Conn state     │
//!                    │ Vec + free │    │      │ machine        │
//!                    │ list       │    │      │ parse→dispatch │
//!                    └────────────┘    │      │ encode→flush   │
//!                                      │      └───────┬────────┘
//!                                      │              │ Job{slot,gen,seq}
//!                           completions│              ▼
//!                    ┌─────────────────┴──┐   ┌────────────────┐
//!                    │ service threads    │◀──│ crossbeam queue│
//!                    │ route() → batcher/ │   └────────────────┘
//!                    │ pool / caches      │
//!                    └────────────────────┘
//! ```
//!
//! Parsed requests are dispatched to a small pool of *service threads*
//! that call the exact same [`route`](crate::server) the threaded front
//! end calls — byte-identical responses by construction, since compute
//! still funnels through the micro-batcher, the `ThreadPool`, and the
//! response caches. Completed bodies come back over a mutex-guarded queue
//! plus a [`WakePipe`](sss_exec::poll::WakePipe) registered in the same
//! epoll set (the classic self-pipe), and the connection writes them out
//! in request order.
//!
//! Determinism discipline: connections live in a `Vec` slab (no hash-map
//! iteration anywhere near the wire), and the idle timeout is counted in
//! *quiet epoll ticks* — `epoll_wait` timeouts with zero events — so the
//! hot path never reads a wall clock. A busy loop postpones idle
//! accounting, which is exactly the intent: a connection is only "idle"
//! when the whole reactor had time to notice.

use std::io;
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crossbeam::channel;
use sss_exec::poll::{Events, Poller, WakePipe};

use crate::conn::{Conn, ReadOutcome};
use crate::http::{HttpError, Request};
use crate::server::{error_body, route, AppState};

/// Slab token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Slab token of the wake pipe's read end.
const TOKEN_WAKE: u64 = 1;
/// First token available to connections (slab index + `TOKEN_BASE`).
const TOKEN_BASE: u64 = 2;

/// One parsed request on its way to a service thread.
struct Job {
    slot: usize,
    gen: u64,
    seq: u64,
    request: Request,
}

/// One routed response on its way back to the event loop.
struct Done {
    slot: usize,
    gen: u64,
    seq: u64,
    status: u16,
    body: Arc<str>,
    close: bool,
}

/// The connection slab plus the poller registrations that mirror it.
struct Slab {
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on retire: completions for a previous
    /// occupant of a reused slot carry a stale generation and are dropped.
    gens: Vec<u64>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.gens.push(0);
                self.conns.len() - 1
            }
        }
    }

    fn open(&self) -> usize {
        self.conns.len() - self.free.len()
    }
}

/// How many threads sit between the event loop and the compute pools.
/// They only parse-free route and block on the batcher/caches, so a small
/// multiple of the worker count keeps every compute thread fed without
/// recreating thread-per-connection.
fn service_threads(workers: usize) -> usize {
    (workers.max(1) * 4).clamp(4, 64)
}

/// Serve `listener` with the reactor until shutdown is flagged.
pub(crate) fn run(listener: TcpListener, state: Arc<AppState>) -> io::Result<()> {
    let config = state.config;
    let wake = state
        .waker
        .clone()
        .ok_or_else(|| io::Error::other("reactor started without its wake pipe"))?;

    // Two descriptors per loadtest-style in-process client plus slack;
    // best-effort — the accept path enforces max_connections regardless.
    sss_exec::poll::raise_nofile_limit(config.max_connections as u64 * 2 + 128);

    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    poller.add(wake.read_fd(), TOKEN_WAKE, true, false)?;

    let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
    let (job_tx, job_rx) = channel::unbounded::<Job>();
    let services: Vec<_> = (0..service_threads(config.workers))
        .map(|i| {
            let rx = job_rx.clone();
            let state = state.clone();
            let completions = completions.clone();
            let wake = wake.clone();
            std::thread::Builder::new()
                .name(format!("sss-svc-{i}"))
                .spawn(move || service_loop(rx, &state, &completions, &wake))
        })
        .collect::<Result<_, _>>()?;
    drop(job_rx);

    let mut slab = Slab {
        conns: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
    };
    let mut events = Events::with_capacity(1024);
    let mut scratch = vec![0u8; config.read_buffer.clamp(512, 1 << 20)];
    let mut done_batch: Vec<Done> = Vec::new();

    let tick_ms = config.tick_ms.clamp(1, i32::MAX as u64) as i32;
    loop {
        poller.wait(&mut events, tick_ms)?;
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if events.is_empty() {
            tick_idle(&mut slab, &poller, &state);
            continue;
        }
        // Tokens are collected before handling: each handler may retire
        // connections and mutate the slab, and `events` stays immutable
        // while iterated.
        let ready: Vec<sss_exec::poll::Event> = events.iter().collect();
        for event in ready {
            match event.token {
                TOKEN_LISTENER => accept_ready(&listener, &mut slab, &poller, &state),
                TOKEN_WAKE => {
                    wake.drain();
                    swap_completions(&completions, &mut done_batch);
                    for done in done_batch.drain(..) {
                        apply_done(done, &mut slab, &poller, &state);
                    }
                }
                token => {
                    let slot = (token - TOKEN_BASE) as usize;
                    conn_ready(
                        slot,
                        event,
                        &mut slab,
                        &poller,
                        &state,
                        &mut scratch,
                        &job_tx,
                    );
                }
            }
        }
    }

    // Retire the fleet, then the service threads: dropping the sender
    // lets each service worker drain its queue and exit.
    drop(job_tx);
    for service in services {
        let _ = service.join();
    }
    Ok(())
}

/// Service-thread body: route requests exactly as the threaded front end
/// does, then hand the body back through the completion queue + wake pipe.
fn service_loop(
    rx: channel::Receiver<Job>,
    state: &AppState,
    completions: &Mutex<Vec<Done>>,
    wake: &WakePipe,
) {
    while let Ok(job) = rx.recv() {
        let close = job.request.close;
        let (status, body) = route(&job.request, state);
        completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Done {
                slot: job.slot,
                gen: job.gen,
                seq: job.seq,
                status,
                body,
                close,
            });
        wake.wake();
    }
}

fn swap_completions(completions: &Mutex<Vec<Done>>, into: &mut Vec<Done>) {
    let mut queue = completions
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::mem::swap(&mut *queue, into);
}

/// Quiet tick: advance every idle connection's clock and reap timeouts.
fn tick_idle(slab: &mut Slab, poller: &Poller, state: &AppState) {
    let limit = state.config.idle_timeout_ticks;
    for slot in 0..slab.conns.len() {
        let Some(conn) = slab.conns[slot].as_mut() else {
            continue;
        };
        if !conn.idle() {
            conn.idle_ticks = 0;
            continue;
        }
        conn.idle_ticks += 1;
        if limit > 0 && conn.idle_ticks >= limit {
            retire(slot, slab, poller, state);
        }
    }
}

/// Drain the accept queue. Over the connection cap the socket is accepted
/// and immediately dropped — a prompt RST beats a client hanging in the
/// backlog until its own timeout.
fn accept_ready(listener: &TcpListener, slab: &mut Slab, poller: &Poller, state: &AppState) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if slab.open() >= state.config.max_connections {
                    drop(stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                let slot = slab.insert(Conn::new(stream));
                if poller
                    .add(fd, TOKEN_BASE + slot as u64, true, false)
                    .is_err()
                {
                    slab.conns[slot] = None;
                    slab.gens[slot] += 1;
                    slab.free.push(slot);
                    continue;
                }
                state.open_conns.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection failures (ECONNABORTED & friends):
            // skip this one, keep accepting on the next readiness event.
            Err(_) => break,
        }
    }
}

/// One connection's readiness notification.
fn conn_ready(
    slot: usize,
    event: sss_exec::poll::Event,
    slab: &mut Slab,
    poller: &Poller,
    state: &AppState,
    scratch: &mut [u8],
    job_tx: &channel::Sender<Job>,
) {
    let gen = match slab.gens.get(slot) {
        Some(gen) => *gen,
        None => return,
    };
    let Some(conn) = slab.conns[slot].as_mut() else {
        return; // already retired this batch
    };
    conn.idle_ticks = 0;
    let write_buffer = state.config.write_buffer;

    if event.readable {
        let outcome = conn.read_ready(scratch, write_buffer);
        let (requests, bad) = match outcome {
            ReadOutcome::Requests(requests) => (requests, None),
            ReadOutcome::Bad(requests, error) => (requests, Some(error)),
            ReadOutcome::Dead => {
                retire(slot, slab, poller, state);
                return;
            }
        };
        for request in requests {
            dispatch(slot, gen, request, slab, state, job_tx);
        }
        if let Some(error) = bad {
            reject(slot, slab, poller, state, &error);
        }
    }

    finalize(slot, slab, poller, state);
}

/// Hand one parsed request to the service threads, in wire order.
fn dispatch(
    slot: usize,
    gen: u64,
    request: Request,
    slab: &mut Slab,
    state: &AppState,
    job_tx: &channel::Sender<Job>,
) {
    let Some(conn) = slab.conns[slot].as_mut() else {
        return;
    };
    let seq = conn.assign_seq();
    conn.job_started();
    state.requests.fetch_add(1, Ordering::Relaxed);
    let job = Job {
        slot,
        gen,
        seq,
        request,
    };
    if job_tx.send(job).is_err() {
        // Service threads are gone (shutdown race): answer inline so the
        // connection is not left waiting on a completion that cannot come.
        if let Some(conn) = slab.conns[slot].as_mut() {
            conn.job_finished();
            conn.deliver(seq, 500, error_body("service unavailable".into()), true);
        }
    }
}

/// Sequence a parse-error response after any valid pipelined predecessors
/// and seal the connection.
fn reject(slot: usize, slab: &mut Slab, poller: &Poller, state: &AppState, error: &HttpError) {
    let Some(conn) = slab.conns[slot].as_mut() else {
        return;
    };
    let status = match error {
        HttpError::Malformed(_) => 400,
        HttpError::TooLarge(_) => 413,
        HttpError::HeadersTooLarge(_) => 431,
        // Read-level I/O failures never produce a response.
        HttpError::Io(_) => {
            retire(slot, slab, poller, state);
            return;
        }
    };
    let seq = conn.assign_seq();
    conn.seal();
    conn.start_drain();
    conn.deliver(seq, status, error_body(error.to_string()), true);
}

/// Flush, retire, or re-register interest after any state change.
fn finalize(slot: usize, slab: &mut Slab, poller: &Poller, state: &AppState) {
    let Some(conn) = slab.conns[slot].as_mut() else {
        return;
    };
    if conn.flush_ready().is_err() || conn.done() {
        retire(slot, slab, poller, state);
        return;
    }
    let desired = (
        conn.wants_read(state.config.write_buffer),
        conn.wants_write(),
    );
    if desired != conn.registered {
        let fd = conn.stream().as_raw_fd();
        if poller
            .modify(fd, TOKEN_BASE + slot as u64, desired.0, desired.1)
            .is_ok()
        {
            conn.registered = desired;
        }
    }
}

/// Deliver one completed response back to its connection, dropping
/// completions whose slot has been reused since dispatch.
fn apply_done(done: Done, slab: &mut Slab, poller: &Poller, state: &AppState) {
    if slab.gens.get(done.slot) != Some(&done.gen) {
        return;
    }
    let Some(conn) = slab.conns[done.slot].as_mut() else {
        return;
    };
    conn.job_finished();
    conn.deliver(done.seq, done.status, done.body, done.close);
    finalize(done.slot, slab, poller, state);
}

/// Remove a connection from the slab and the poller; its socket closes on
/// drop. The generation bump invalidates in-flight completions.
fn retire(slot: usize, slab: &mut Slab, poller: &Poller, state: &AppState) {
    if let Some(conn) = slab.conns[slot].take() {
        let _ = poller.remove(conn.stream().as_raw_fd());
        slab.gens[slot] += 1;
        slab.free.push(slot);
        state.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}
