//! Micro-batching of concurrent `/decide` requests.
//!
//! Connection threads do not evaluate the model themselves: they submit
//! the parsed parameters to the [`Batcher`] and block on a reply channel.
//! A single dispatcher thread drains whatever has accumulated in the
//! submission queue — up to `max_batch` requests — checks the decision
//! cache for each, flushes **all** the misses through one
//! `sss_core::decide_batch` struct-of-arrays kernel sweep, and then
//! finishes the responses (break-even boundaries, sensitivities,
//! serialization) in **one** [`sss_exec::ThreadPool`] task wave. Under
//! load this amortizes both the model arithmetic and the thread fan-out
//! across many requests (one kernel sweep and one pool spawn per batch,
//! not per request) while an idle service still answers a lone request
//! immediately: the dispatcher never waits for a batch to fill.
//!
//! Replies are the serialized response bodies (`Arc<str>`) produced by
//! [`DecideResponse::evaluate`] — pure, so batching and worker count can
//! change scheduling freely without changing a single response byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use crossbeam::channel;
use serde::{Deserialize, Serialize};
use sss_core::{decide_batch, DecisionReport, ModelParams};
use sss_exec::ThreadPool;

use crate::api::DecideResponse;
use crate::cache::{CacheKey, DecisionCache};

struct Job {
    key: CacheKey,
    params: ModelParams,
    reply: mpsc::Sender<Arc<str>>,
}

/// Point-in-time batching counters, served under `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Pool waves dispatched.
    pub batches: u64,
    /// Requests that flowed through the batcher.
    pub requests: u64,
    /// Largest batch observed so far.
    pub max_batch_observed: u64,
}

/// The `/decide` evaluation pipeline: submission queue, dispatcher thread,
/// thread pool and cache.
pub struct Batcher {
    tx: Option<channel::Sender<Job>>,
    dispatcher: Option<JoinHandle<()>>,
    batches: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
    max_observed: Arc<AtomicU64>,
}

/// Body served when an internal invariant breaks mid-request. A panic on
/// the dispatcher thread would kill batching for every future request, so
/// internal failures degrade to this body instead.
const INTERNAL_ERROR_BODY: &str = r#"{"error":"internal: response pipeline failure"}"#;

/// Serialize one evaluated response to its canonical body bytes.
/// `DecideResponse` is a pure value type, so serialization cannot fail
/// with the vendored serde_json — but if it ever does, the request gets
/// an error body rather than panicking the dispatcher.
fn serialize_body(response: &DecideResponse) -> Arc<str> {
    match serde_json::to_string(response) {
        Ok(json) => Arc::from(json),
        Err(_) => Arc::from(INTERNAL_ERROR_BODY),
    }
}

/// Evaluate and serialize one workload — the scalar reference the batched
/// wave is asserted against in tests.
#[cfg(test)]
fn evaluate_body(params: &ModelParams) -> Arc<str> {
    serialize_body(&DecideResponse::evaluate(params))
}

impl Batcher {
    /// Start the dispatcher with `workers` pool threads, draining at most
    /// `max_batch` queued requests per wave.
    pub fn new(cache: Arc<DecisionCache>, workers: usize, max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let batches = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));
        let max_observed = Arc::new(AtomicU64::new(0));

        let counters = (batches.clone(), requests.clone(), max_observed.clone());
        let dispatcher = std::thread::spawn(move || {
            let pool = ThreadPool::new(workers);
            let (batches, requests, max_observed) = counters;
            // Blocks until work arrives; exits when every sender is gone.
            while let Ok(first) = rx.recv() {
                let mut jobs = vec![first];
                while jobs.len() < max_batch {
                    match rx.try_recv() {
                        Some(job) => jobs.push(job),
                        None => break,
                    }
                }
                batches.fetch_add(1, Ordering::Relaxed);
                requests.fetch_add(jobs.len() as u64, Ordering::Relaxed);
                max_observed.fetch_max(jobs.len() as u64, Ordering::Relaxed);

                // Cache pass: answer hits immediately, collect the misses.
                let mut bodies: Vec<Option<Arc<str>>> =
                    jobs.iter().map(|j| cache.get(&j.key)).collect();
                let miss_indices: Vec<usize> =
                    (0..jobs.len()).filter(|&i| bodies[i].is_none()).collect();

                // Flush the whole wave of misses through one batched
                // decide pass (a single struct-of-arrays kernel sweep on
                // the dispatcher thread), then finish each response —
                // break-even, sensitivities, serialization — across the
                // pool. Duplicate keys within a wave evaluate redundantly
                // (same pure result) — harmless, and not worth an
                // intra-batch dedup pass.
                let miss_params: Vec<ModelParams> =
                    miss_indices.iter().map(|&i| jobs[i].params).collect();
                let reports: Vec<(ModelParams, DecisionReport)> = miss_params
                    .iter()
                    .copied()
                    .zip(decide_batch(&miss_params))
                    .collect();
                let fresh = pool.map(&reports, |(params, report)| {
                    serialize_body(&DecideResponse::from_report(params, report.clone()))
                });
                for (&i, body) in miss_indices.iter().zip(fresh) {
                    cache.insert(jobs[i].key, body.clone());
                    bodies[i] = Some(body);
                }

                for (job, body) in jobs.into_iter().zip(bodies) {
                    // Every job was answered by the cache pass or the miss
                    // wave; if that invariant ever breaks, serve an error
                    // body instead of panicking the dispatcher. A dropped
                    // receiver means the connection died while queued;
                    // nothing to do.
                    let body = body.unwrap_or_else(|| Arc::from(INTERNAL_ERROR_BODY));
                    let _ = job.reply.send(body);
                }
            }
        });

        Batcher {
            tx: Some(tx),
            dispatcher: Some(dispatcher),
            batches,
            requests,
            max_observed,
        }
    }

    /// Evaluate one workload through the batch pipeline, blocking until
    /// its response body is ready. Fails (instead of panicking the
    /// connection thread) if the dispatcher is gone — the caller turns
    /// that into a 500 response.
    pub fn submit(&self, params: ModelParams) -> Result<Arc<str>, String> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            key: CacheKey::of(&params),
            params,
            reply: reply_tx,
        };
        self.tx
            .as_ref()
            .ok_or_else(|| "batcher is shut down".to_string())?
            .send(job)
            .map_err(|_| "batch dispatcher is gone".to_string())?;
        reply_rx
            .recv()
            .map_err(|_| "batch dispatcher dropped the reply".to_string())
    }

    /// Current counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            max_batch_observed: self.max_observed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Close the queue so the dispatcher's recv() fails, then join it.
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_units::{Bytes, ComputeIntensity, FlopRate, Rate, Ratio};

    fn params(alpha: f64) -> ModelParams {
        ModelParams::builder()
            .data_unit(Bytes::from_gb(2.0))
            .intensity(ComputeIntensity::from_tflop_per_gb(17.0))
            .local_rate(FlopRate::from_tflops(10.0))
            .remote_rate(FlopRate::from_tflops(340.0))
            .bandwidth(Rate::from_gbps(25.0))
            .alpha(Ratio::new(alpha))
            .build()
            .unwrap()
    }

    #[test]
    fn single_request_round_trips() {
        let cache = Arc::new(DecisionCache::new(64));
        let batcher = Batcher::new(cache.clone(), 2, 8);
        let body = batcher.submit(params(0.8)).unwrap();
        assert!(body.contains("RemoteStream"), "{body}");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn repeat_requests_hit_the_cache() {
        let cache = Arc::new(DecisionCache::new(64));
        let batcher = Batcher::new(cache.clone(), 2, 8);
        let first = batcher.submit(params(0.8)).unwrap();
        let second = batcher.submit(params(0.8)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the body");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn concurrent_submissions_batch_and_agree() {
        let cache = Arc::new(DecisionCache::new(1024));
        let batcher = Arc::new(Batcher::new(cache, 4, 32));
        let alphas: Vec<f64> = (0..64).map(|i| 0.30 + 0.01 * (i % 16) as f64).collect();
        let bodies: Vec<Arc<str>> = std::thread::scope(|scope| {
            let handles: Vec<_> = alphas
                .iter()
                .map(|&a| {
                    let batcher = batcher.clone();
                    scope.spawn(move || batcher.submit(params(a)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every submission with the same alpha gets the same bytes.
        for (a, body) in alphas.iter().zip(&bodies) {
            let direct = evaluate_body(&params(*a));
            assert_eq!(body.as_ref(), direct.as_ref());
        }
        let stats = batcher.stats();
        assert_eq!(stats.requests, 64);
        assert!(stats.batches <= 64);
    }

    #[test]
    fn workers_do_not_change_bytes() {
        let run = |workers: usize| -> Vec<Arc<str>> {
            let cache = Arc::new(DecisionCache::new(0)); // force evaluation
            let batcher = Batcher::new(cache, workers, 16);
            (0..16)
                .map(|i| batcher.submit(params(0.5 + 0.02 * i as f64)).unwrap())
                .collect()
        };
        let one = run(1);
        let eight = run(8);
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.as_ref(), b.as_ref());
        }
    }
}
