//! Incremental max-min fairness: the **water-filling** allocator behind
//! the fleet simulator's shared-WAN mechanics.
//!
//! [`progressive_fill`](crate::progressive_fill) answers one allocation
//! from scratch in `O(k²)`: every round rescans all `k` flows. That is
//! fine inside [`FluidSimulator`](crate::FluidSimulator), whose flow
//! counts are small, but the multi-tenant fleet simulator re-solves the
//! allocation at *every* event — arrival, drain, trace breakpoint — and
//! at facility scale the quadratic rescan dominates the run.
//!
//! [`WaterFiller`] maintains the same allocation *incrementally*. The
//! standard water-level characterization: with capacity `C` and caps
//! sorted ascending `c₁ ≤ … ≤ cₙ`, a flow at sorted position `j` is
//! **frozen** (granted its cap) iff
//!
//! ```text
//! g(j) = Σ_{i≤j} cᵢ + c_j·(n−j) ≤ C        (g is nondecreasing in j)
//! ```
//!
//! so the frozen prefix length `m` is a binary search, and the water
//! level is `L = (C − Σ_{i≤m} cᵢ) / (n−m)` (`+∞` when every demand
//! fits). Grants are then a pure function of `(cap, L)`: `cap` verbatim
//! when `cap ≤ L` — bit-equal to the demand, preserving
//! `progressive_fill`'s contract that an ordinary `<` separates clipped
//! from unclipped flows — and `L` otherwise.
//!
//! The structure keeps flows sorted by `(cap, id)` with a running
//! prefix-sum array: building from `k` flows is `O(k log k)`, and when
//! one flow's cap changes, arrives or drains, **re-levelling is an
//! `O(log k)` binary search** over the repaired prefix sums. Positional
//! maintenance is a bounded `memmove` (`k` is capped by the fleet's DTN
//! slot count, ≤ 4096), which on contiguous memory beats pointer-chasing
//! trees at every size the cap admits. The sorted order also gives the
//! fleet engine its status-flip query for free: when the level moves
//! from `L₀` to `L₁`, exactly the flows with caps in
//! `(min(L₀,L₁), max(L₀,L₁)]` can change sides — an `O(log k + flips)`
//! range visit instead of a full rescan.
//!
//! `progressive_fill` stays as the reference oracle: the differential
//! proptest below holds every [`WaterFiller`] grant to ≤ 1e-12 relative
//! error against it across random cap sets and event schedules.

/// Handle to a flow registered with a [`WaterFiller`].
///
/// Handles are slab indices: dense, copyable, and recycled after
/// [`WaterFiller::remove`] in deterministic LIFO order, so callers can
/// key side tables by [`WaterFlowId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaterFlowId(u32);

impl WaterFlowId {
    /// The dense slab index behind the handle (stable until the flow is
    /// removed; reused afterwards).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Incremental max-min fair allocator over one shared capacity.
///
/// Semantically identical to running
/// [`progressive_fill`](crate::progressive_fill) over the live caps
/// after every mutation, up to float re-association (the differential
/// tests hold the drift to ≤ 1e-12 relative); frozen grants are caps
/// **verbatim** in both.
///
/// ```
/// use sss_netsim::{progressive_fill, WaterFiller};
///
/// let mut wf = WaterFiller::new(10.0);
/// let a = wf.insert(2.0);
/// let b = wf.insert(9.0);
/// let c = wf.insert(9.0);
/// // Same allocation as the one-shot oracle: [2, 4, 4].
/// assert_eq!(progressive_fill(10.0, &[2.0, 9.0, 9.0]), vec![2.0, 4.0, 4.0]);
/// assert_eq!(wf.grant(a), 2.0);
/// assert_eq!(wf.grant(b), 4.0);
/// assert_eq!(wf.grant(c), 4.0);
/// // One flow drains: the remaining two re-level in O(log k).
/// wf.remove(b);
/// assert_eq!(wf.grant(a), 2.0);
/// assert_eq!(wf.grant(c), 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct WaterFiller {
    /// The shared capacity being divided.
    capacity: f64,
    /// Cap per slab slot (stale once the slot is freed).
    caps: Vec<f64>,
    /// Whether each slab slot currently holds a live flow.
    alive: Vec<bool>,
    /// Freed slab slots, reused LIFO.
    free: Vec<u32>,
    /// Live flow ids sorted ascending by `(cap, id)`.
    order: Vec<u32>,
    /// `prefix[i]` = running sum of `caps` over `order[0..=i]`.
    prefix: Vec<f64>,
    /// The current water level; `+∞` when every demand fits.
    level: f64,
}

impl WaterFiller {
    /// An empty allocator over `capacity` (same units as the caps).
    ///
    /// # Panics
    /// Panics on a negative or non-finite capacity.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity >= 0.0 && capacity.is_finite(),
            "capacity must be finite and >= 0, got {capacity}"
        );
        WaterFiller {
            capacity,
            caps: Vec::new(),
            alive: Vec::new(),
            free: Vec::new(),
            order: Vec::new(),
            prefix: Vec::new(),
            level: f64::INFINITY,
        }
    }

    /// The shared capacity being divided.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The current water level: every flow with `cap > level` is clipped
    /// to it. `+∞` when every demand fits within the capacity (all flows
    /// granted their caps), which makes `grant = min(cap, level)` the
    /// uniform rule.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The registered cap of a live flow.
    ///
    /// # Panics
    /// Panics on a removed (or never-issued) handle.
    pub fn cap(&self, id: WaterFlowId) -> f64 {
        assert!(self.alive[id.index()], "flow {:?} is not live", id);
        self.caps[id.index()]
    }

    /// The flow's max-min fair grant: its cap **verbatim** when
    /// `cap ≤ level` (bit-equal to the demand, so `grant < cap` cleanly
    /// tests "clipped"), the water level otherwise.
    ///
    /// # Panics
    /// Panics on a removed handle.
    pub fn grant(&self, id: WaterFlowId) -> f64 {
        let cap = self.cap(id);
        if cap <= self.level {
            cap
        } else {
            self.level
        }
    }

    /// Whether the flow is currently clipped below its cap.
    ///
    /// # Panics
    /// Panics on a removed handle.
    pub fn is_clipped(&self, id: WaterFlowId) -> bool {
        self.cap(id) > self.level
    }

    /// Register a flow demanding `cap`; re-levels incrementally.
    ///
    /// # Panics
    /// Panics on a negative or non-finite cap.
    pub fn insert(&mut self, cap: f64) -> WaterFlowId {
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "flow cap must be finite and >= 0, got {cap}"
        );
        let id = match self.free.pop() {
            Some(id) => {
                self.caps[id as usize] = cap;
                self.alive[id as usize] = true;
                id
            }
            None => {
                self.caps.push(cap);
                self.alive.push(true);
                (self.caps.len() - 1) as u32
            }
        };
        let pos = self.position_of(cap, id);
        self.order.insert(pos, id);
        self.prefix.push(0.0);
        self.refresh_from(pos);
        WaterFlowId(id)
    }

    /// Remove a drained flow; re-levels incrementally.
    ///
    /// # Panics
    /// Panics on a handle already removed.
    pub fn remove(&mut self, id: WaterFlowId) {
        let i = id.0;
        assert!(self.alive[i as usize], "flow {:?} is not live", id);
        let pos = self.position_of(self.caps[i as usize], i);
        debug_assert_eq!(self.order[pos], i);
        self.order.remove(pos);
        self.prefix.pop();
        self.alive[i as usize] = false;
        self.free.push(i);
        self.refresh_from(pos);
    }

    /// Change a live flow's cap (a trace breakpoint moving its demand);
    /// re-levels incrementally.
    ///
    /// # Panics
    /// Panics on a removed handle or an invalid cap.
    pub fn update(&mut self, id: WaterFlowId, cap: f64) {
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "flow cap must be finite and >= 0, got {cap}"
        );
        let i = id.0;
        assert!(self.alive[i as usize], "flow {:?} is not live", id);
        let old = self.position_of(self.caps[i as usize], i);
        debug_assert_eq!(self.order[old], i);
        self.order.remove(old);
        self.caps[i as usize] = cap;
        let new = self.position_of(cap, i);
        self.order.insert(new, i);
        self.refresh_from(old.min(new));
    }

    /// Visit every live flow whose cap lies in the half-open interval
    /// `(lo, hi]`, ascending. This is the fleet engine's **status-flip
    /// query**: after the level moves from `L₀` to `L₁`, only flows with
    /// caps in `(min(L₀,L₁), max(L₀,L₁)]` can have changed sides —
    /// `O(log k + flips)` instead of a full rescan. An infinite `hi`
    /// (the all-frozen level) visits everything above `lo`.
    pub fn for_caps_in(&self, lo: f64, hi: f64, mut visit: impl FnMut(WaterFlowId)) {
        if hi <= lo {
            return;
        }
        let start = self.order.partition_point(|&f| self.caps[f as usize] <= lo);
        for &f in &self.order[start..] {
            if self.caps[f as usize] > hi {
                break;
            }
            visit(WaterFlowId(f));
        }
    }

    /// Sorted insertion point of `(cap, id)` — caps are finite and
    /// non-negative, so the IEEE bit pattern orders exactly like the
    /// value and the composite key needs no float comparator.
    fn position_of(&self, cap: f64, id: u32) -> usize {
        let key = (cap.to_bits(), id);
        self.order
            .partition_point(|&f| (self.caps[f as usize].to_bits(), f) < key)
    }

    /// Repair the prefix sums from `from` onward and re-solve the level.
    /// The running sum re-uses `prefix[from-1]`, which is by induction
    /// bitwise equal to a fresh left-to-right summation of the current
    /// sorted caps — so the level never depends on mutation history.
    fn refresh_from(&mut self, from: usize) {
        let mut acc = if from == 0 {
            0.0
        } else {
            self.prefix[from - 1]
        };
        for k in from..self.order.len() {
            acc += self.caps[self.order[k] as usize];
            self.prefix[k] = acc;
        }
        self.relevel();
    }

    /// Binary-search the frozen prefix (the largest `m` with
    /// `g(m) ≤ C`; `g` is nondecreasing) and derive the water level —
    /// the `O(log k)` re-level at the heart of the structure.
    fn relevel(&mut self) {
        let n = self.order.len();
        if n == 0 {
            self.level = f64::INFINITY;
            return;
        }
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            let i = mid - 1;
            let g = self.prefix[i] + self.caps[self.order[i] as usize] * (n - mid) as f64;
            if g <= self.capacity {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let m = lo;
        self.level = if m == n {
            f64::INFINITY
        } else {
            let used = if m == 0 { 0.0 } else { self.prefix[m - 1] };
            ((self.capacity - used) / (n - m) as f64).max(0.0)
        };
    }

    /// Structural invariants, asserted by the tests after every
    /// mutation: order sorted by `(cap, id)`, prefix sums bitwise equal
    /// to a fresh left-to-right summation.
    #[cfg(test)]
    fn check_invariants(&self) {
        let mut acc = 0.0f64;
        for (k, &f) in self.order.iter().enumerate() {
            assert!(self.alive[f as usize]);
            if k > 0 {
                let prev = self.order[k - 1];
                let a = (self.caps[prev as usize].to_bits(), prev);
                let b = (self.caps[f as usize].to_bits(), f);
                assert!(a < b, "order not sorted at {k}");
            }
            acc += self.caps[f as usize];
            assert_eq!(acc.to_bits(), self.prefix[k].to_bits(), "prefix at {k}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::progressive_fill;
    use proptest::prelude::*;

    /// Shadow model: `(id, cap)` in insertion order, the layout
    /// `progressive_fill` sees.
    struct Shadow {
        wf: WaterFiller,
        live: Vec<(WaterFlowId, f64)>,
    }

    impl Shadow {
        fn new(capacity: f64) -> Self {
            Shadow {
                wf: WaterFiller::new(capacity),
                live: Vec::new(),
            }
        }

        fn insert(&mut self, cap: f64) {
            let id = self.wf.insert(cap);
            self.live.push((id, cap));
        }

        fn remove(&mut self, pos: usize) {
            let (id, _) = self.live.remove(pos);
            self.wf.remove(id);
        }

        fn update(&mut self, pos: usize, cap: f64) {
            let (id, slot) = (self.live[pos].0, pos);
            self.wf.update(id, cap);
            self.live[slot].1 = cap;
        }

        /// Every grant within 1e-12 relative of the oracle, frozen
        /// grants bit-equal to their caps, and total grants within the
        /// capacity.
        fn assert_matches_oracle(&self) {
            self.wf.check_invariants();
            let caps: Vec<f64> = self.live.iter().map(|&(_, c)| c).collect();
            let want = progressive_fill(self.wf.capacity(), &caps);
            let scale = self
                .wf
                .capacity()
                .max(caps.iter().copied().fold(0.0, f64::max))
                .max(1.0);
            let mut total = 0.0;
            for (&(id, cap), &w) in self.live.iter().zip(&want) {
                let got = self.wf.grant(id);
                assert!(
                    (got - w).abs() <= 1e-12 * scale,
                    "grant {got} vs oracle {w} for cap {cap} (caps {caps:?}, C {})",
                    self.wf.capacity()
                );
                if !self.wf.is_clipped(id) {
                    assert_eq!(
                        got.to_bits(),
                        cap.to_bits(),
                        "frozen grants must be the cap verbatim"
                    );
                }
                total += got;
            }
            if !self.live.is_empty() && self.wf.level().is_finite() {
                assert!(
                    total <= self.wf.capacity() * (1.0 + 1e-9) + 1e-9 * scale,
                    "grants {total} overshoot capacity {}",
                    self.wf.capacity()
                );
            }
        }
    }

    #[test]
    fn matches_the_doc_example() {
        let mut s = Shadow::new(10.0);
        for c in [2.0, 9.0, 9.0] {
            s.insert(c);
            s.assert_matches_oracle();
        }
        assert_eq!(s.wf.grant(s.live[0].0), 2.0);
        assert_eq!(s.wf.grant(s.live[1].0), 4.0);
        assert!(s.wf.is_clipped(s.live[1].0));
        assert!(!s.wf.is_clipped(s.live[0].0));
    }

    #[test]
    fn single_flow_is_capped_by_capacity_only() {
        let mut s = Shadow::new(5.0);
        s.insert(3.0);
        s.assert_matches_oracle();
        assert_eq!(s.wf.grant(s.live[0].0), 3.0);
        s.update(0, 8.0);
        s.assert_matches_oracle();
        assert_eq!(s.wf.grant(s.live[0].0), 5.0);
    }

    #[test]
    fn all_frozen_when_capacity_dominates() {
        let mut s = Shadow::new(1e12);
        for c in [1.0, 2.5, 0.0, 7.0] {
            s.insert(c);
        }
        s.assert_matches_oracle();
        assert_eq!(s.wf.level(), f64::INFINITY);
        for &(id, cap) in &s.live {
            assert_eq!(s.wf.grant(id).to_bits(), cap.to_bits());
        }
    }

    #[test]
    fn zero_capacity_grants_zero_with_zero_caps_verbatim() {
        let mut s = Shadow::new(0.0);
        s.insert(1.0);
        s.insert(0.0);
        s.assert_matches_oracle();
        // The zero-cap flow "fits" (frozen at 0 verbatim); the other is
        // clipped to a zero level.
        assert!(!s.wf.is_clipped(s.live[1].0));
        assert!(s.wf.is_clipped(s.live[0].0));
        assert_eq!(s.wf.grant(s.live[0].0), 0.0);
    }

    #[test]
    fn tied_caps_land_on_the_same_side() {
        let mut s = Shadow::new(10.0);
        for _ in 0..4 {
            s.insert(3.0);
        }
        s.assert_matches_oracle();
        let clipped: Vec<bool> = s.live.iter().map(|&(id, _)| s.wf.is_clipped(id)).collect();
        assert!(
            clipped.iter().all(|&c| c) || clipped.iter().all(|&c| !c),
            "bit-equal caps must not straddle the level: {clipped:?}"
        );
    }

    #[test]
    fn removal_recycles_slab_slots_deterministically() {
        let mut wf = WaterFiller::new(100.0);
        let a = wf.insert(1.0);
        let b = wf.insert(2.0);
        wf.remove(a);
        let c = wf.insert(3.0);
        // LIFO reuse: the freed slot comes back.
        assert_eq!(c.index(), a.index());
        assert_eq!(wf.cap(b), 2.0);
        assert_eq!(wf.cap(c), 3.0);
        assert_eq!(wf.len(), 2);
    }

    #[test]
    fn flip_range_query_sees_exactly_the_crossers() {
        let mut wf = WaterFiller::new(100.0);
        let ids: Vec<WaterFlowId> = [1.0, 4.0, 6.0, 9.0].iter().map(|&c| wf.insert(c)).collect();
        let mut seen = Vec::new();
        wf.for_caps_in(1.0, 6.0, |id| seen.push(id));
        assert_eq!(seen, vec![ids[1], ids[2]], "(1, 6] is {{4, 6}}");
        seen.clear();
        wf.for_caps_in(6.0, f64::INFINITY, |id| seen.push(id));
        assert_eq!(seen, vec![ids[3]]);
        seen.clear();
        wf.for_caps_in(3.0, 3.0, |id| seen.push(id));
        assert!(seen.is_empty(), "an empty interval visits nothing");
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn double_remove_panics() {
        let mut wf = WaterFiller::new(1.0);
        let id = wf.insert(1.0);
        wf.remove(id);
        wf.remove(id);
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 48, ..Default::default()
        })]

        /// The tentpole differential: a `WaterFiller` driven through a
        /// random event schedule (inserts — including zero-cap flows —
        /// removes and cap updates) agrees with a fresh
        /// `progressive_fill` over the live caps after *every* mutation,
        /// to ≤ 1e-12 relative error, with frozen grants bit-equal.
        #[test]
        fn grants_match_progressive_fill_through_event_schedules(
            // Three capacity regimes: zero (everything clips to 0),
            // contended (the interesting case), and dominant
            // (all-frozen: every grant is a cap verbatim).
            capacity_class in 0u8..3,
            capacity_mantissa in 1.0f64..9.9,
            ops in proptest::collection::vec(
                (0u8..4, any::<u16>(), 0.0f64..1e9),
                1..70,
            ),
        ) {
            let capacity = match capacity_class {
                0 => 0.0,
                1 => capacity_mantissa * 1e8,
                _ => capacity_mantissa * 1e12,
            };
            let mut s = Shadow::new(capacity);
            for (kind, pick, cap) in ops {
                match kind {
                    0 => s.insert(cap),
                    // Zero-cap flows: a session inside an outage window.
                    1 => s.insert(0.0),
                    2 if !s.live.is_empty() => {
                        let pos = pick as usize % s.live.len();
                        s.remove(pos);
                    }
                    3 if !s.live.is_empty() => {
                        let pos = pick as usize % s.live.len();
                        s.update(pos, cap);
                    }
                    _ => s.insert(cap),
                }
                s.assert_matches_oracle();
            }
        }
    }
}
