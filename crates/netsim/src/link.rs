//! Store-and-forward link with a byte-limited drop-tail FIFO.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::config::{LinkConfig, Qdisc};
use crate::packet::Packet;
use sss_sim::SimTime;

/// Running counters for one link (the "interface byte/packet counters"
/// the paper's methodology collects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub enqueued_pkts: u64,
    /// Packets fully transmitted.
    pub tx_pkts: u64,
    /// Wire bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped (tail drop + early drops).
    pub dropped_pkts: u64,
    /// Wire bytes dropped.
    pub dropped_bytes: u64,
    /// Of the drops, how many were RED early drops (before the buffer
    /// was actually full).
    pub early_drops: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_queue_bytes: u64,
}

/// Transmission state of a link.
///
/// A packet being serialized is held in `in_flight` until its
/// transmission-complete event fires; queued packets wait in FIFO order.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    queue: VecDeque<Packet>,
    queue_bytes: u64,
    in_flight: Option<Packet>,
    stats: LinkStats,
    /// EWMA queue-occupancy estimate (RED only).
    avg_queue: f64,
    /// xorshift64* state for RED's drop decisions; deterministic per seed.
    rng: u64,
}

/// Result of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Link was idle: packet starts transmitting now; the caller must
    /// schedule a transmission-complete event at the returned time.
    StartTx(SimTime),
    /// Packet queued behind the current transmission.
    Queued,
    /// Queue full: packet dropped (tail drop).
    Dropped,
}

impl Link {
    /// Create an idle link. `seed` feeds the (deterministic) RED drop
    /// decisions; it is irrelevant for drop-tail links.
    pub fn new(config: LinkConfig, seed: u64) -> Self {
        Link {
            config,
            queue: VecDeque::new(),
            queue_bytes: 0,
            in_flight: None,
            stats: LinkStats::default(),
            avg_queue: 0.0,
            rng: seed | 1, // xorshift state must be non-zero
        }
    }

    /// Next uniform f64 in [0, 1) from the internal xorshift64* stream.
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let v = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (v >> 11) as f64 / (1u64 << 53) as f64
    }

    /// RED early-drop decision for the current queue state.
    fn red_drops(&mut self) -> bool {
        let Qdisc::Red {
            min_th,
            max_th,
            max_p,
            weight,
        } = self.config.qdisc
        else {
            return false;
        };
        self.avg_queue = (1.0 - weight) * self.avg_queue + weight * self.queue_bytes as f64;
        if self.avg_queue <= min_th {
            false
        } else if self.avg_queue >= max_th {
            true
        } else {
            let p = max_p * (self.avg_queue - min_th) / (max_th - min_th);
            self.next_uniform() < p
        }
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Current queue occupancy in bytes (excluding the packet in service).
    pub fn queue_bytes(&self) -> u64 {
        self.queue_bytes
    }

    /// True when nothing is queued or transmitting.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none() && self.queue.is_empty()
    }

    /// Serialization time for `wire_bytes` at this link's rate, in ns.
    pub fn tx_time_ns(&self, wire_bytes: u32) -> u64 {
        (wire_bytes as f64 / self.config.rate.as_bytes_per_sec() * 1e9).round() as u64
    }

    /// Offer a packet at time `now`.
    pub fn enqueue(&mut self, pkt: Packet, now: SimTime) -> Enqueue {
        if self.in_flight.is_none() {
            // Idle: serialize immediately (no discipline consults an
            // empty queue).
            debug_assert!(self.queue.is_empty());
            let done = now + self.tx_time_ns(pkt.wire_bytes);
            self.in_flight = Some(pkt);
            self.stats.enqueued_pkts += 1;
            return Enqueue::StartTx(done);
        }
        if self.red_drops() {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += pkt.wire_bytes as u64;
            self.stats.early_drops += 1;
            return Enqueue::Dropped;
        }
        let new_occupancy = self.queue_bytes + pkt.wire_bytes as u64;
        if new_occupancy > self.config.buffer.as_b() as u64 {
            self.stats.dropped_pkts += 1;
            self.stats.dropped_bytes += pkt.wire_bytes as u64;
            return Enqueue::Dropped;
        }
        self.queue.push_back(pkt);
        self.queue_bytes = new_occupancy;
        self.stats.enqueued_pkts += 1;
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(self.queue_bytes);
        Enqueue::Queued
    }

    /// Complete the in-service transmission at time `now`.
    ///
    /// Returns the transmitted packet and, if another packet was waiting,
    /// the completion time of the next transmission the caller must
    /// schedule.
    ///
    /// # Panics
    /// Panics if no transmission was in progress (an event-ordering bug).
    pub fn tx_complete(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let pkt = self
            .in_flight
            .take()
            .expect("tx_complete fired on an idle link");
        self.stats.tx_pkts += 1;
        self.stats.tx_bytes += pkt.wire_bytes as u64;
        let next_done = self.queue.pop_front().map(|next| {
            self.queue_bytes -= next.wire_bytes as u64;
            let done = now + self.tx_time_ns(next.wire_bytes);
            self.in_flight = Some(next);
            done
        });
        (pkt, next_done)
    }

    /// One-way propagation delay in nanoseconds.
    pub fn prop_delay_ns(&self) -> u64 {
        SimTime::delta_to_nanos(self.config.prop_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use sss_units::{Bytes, Rate, TimeDelta};

    fn test_link(buffer_bytes: f64) -> Link {
        Link::new(
            LinkConfig {
                rate: Rate::from_bytes_per_sec(1e6), // 1 MB/s: easy arithmetic
                prop_delay: TimeDelta::from_millis(1.0),
                buffer: Bytes::from_b(buffer_bytes),
                qdisc: Qdisc::DropTail,
            },
            7,
        )
    }

    fn red_link(buffer_bytes: f64, min_th: f64, max_th: f64) -> Link {
        Link::new(
            LinkConfig {
                rate: Rate::from_bytes_per_sec(1e6),
                prop_delay: TimeDelta::from_millis(1.0),
                buffer: Bytes::from_b(buffer_bytes),
                qdisc: Qdisc::Red {
                    min_th,
                    max_th,
                    max_p: 0.5,
                    // Heavy weight so the EWMA tracks the tests' short
                    // bursts instead of averaging them away.
                    weight: 0.5,
                },
            },
            7,
        )
    }

    fn pkt(bytes: u32) -> Packet {
        Packet::data(FlowId(0), 0, bytes - Packet::HEADER_BYTES, false)
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = test_link(10_000.0);
        let now = SimTime::from_millis(5);
        match l.enqueue(pkt(1000), now) {
            Enqueue::StartTx(done) => {
                // 1000 B at 1 MB/s = 1 ms.
                assert_eq!(done, now + 1_000_000u64);
            }
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(!l.is_idle());
        assert_eq!(l.queue_bytes(), 0);
    }

    #[test]
    fn busy_link_queues() {
        let mut l = test_link(10_000.0);
        let now = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), now);
        assert_eq!(l.enqueue(pkt(2000), now), Enqueue::Queued);
        assert_eq!(l.queue_bytes(), 2000);
        assert_eq!(l.stats().enqueued_pkts, 2);
        assert_eq!(l.stats().max_queue_bytes, 2000);
    }

    #[test]
    fn full_queue_drops_tail() {
        let mut l = test_link(2_500.0);
        let now = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), now); // in service, not queued
        assert_eq!(l.enqueue(pkt(2000), now), Enqueue::Queued); // 2000/2500
        assert_eq!(l.enqueue(pkt(1000), now), Enqueue::Dropped); // would be 3000
        let s = l.stats();
        assert_eq!(s.dropped_pkts, 1);
        assert_eq!(s.dropped_bytes, 1000);
        // A smaller packet still fits.
        assert_eq!(l.enqueue(pkt(400), now), Enqueue::Queued);
    }

    #[test]
    fn tx_complete_chains_queue() {
        let mut l = test_link(10_000.0);
        let t0 = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), t0);
        let _ = l.enqueue(pkt(500), t0);
        let t1 = SimTime::from_millis(1);
        let (done_pkt, next) = l.tx_complete(t1);
        assert_eq!(done_pkt.wire_bytes, 1000);
        // Next: 500 B at 1 MB/s = 0.5 ms.
        assert_eq!(next.unwrap(), t1 + 500_000u64);
        assert_eq!(l.queue_bytes(), 0);
        let (p2, none) = l.tx_complete(next.unwrap());
        assert_eq!(p2.wire_bytes, 500);
        assert!(none.is_none());
        assert!(l.is_idle());
        assert_eq!(l.stats().tx_bytes, 1500);
        assert_eq!(l.stats().tx_pkts, 2);
    }

    #[test]
    #[should_panic(expected = "idle link")]
    fn tx_complete_on_idle_panics() {
        let mut l = test_link(1000.0);
        let _ = l.tx_complete(SimTime::ZERO);
    }

    #[test]
    fn tx_time_rounds_to_ns() {
        let l = test_link(1000.0);
        assert_eq!(l.tx_time_ns(1), 1_000); // 1 B at 1 MB/s = 1 µs
        assert_eq!(l.prop_delay_ns(), 1_000_000);
    }

    #[test]
    fn red_below_min_threshold_never_drops() {
        let mut l = red_link(100_000.0, 50_000.0, 90_000.0);
        let now = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), now); // in service
        for _ in 0..20 {
            assert_eq!(l.enqueue(pkt(1000), now), Enqueue::Queued);
        }
        assert_eq!(l.stats().early_drops, 0);
    }

    #[test]
    fn red_drops_early_between_thresholds() {
        let mut l = red_link(100_000.0, 5_000.0, 20_000.0);
        let now = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), now);
        let mut early = 0;
        for _ in 0..60 {
            if l.enqueue(pkt(1000), now) == Enqueue::Dropped {
                early += 1;
            }
        }
        let s = l.stats();
        assert!(s.early_drops > 0, "RED should drop before the buffer fills");
        assert_eq!(s.early_drops, early);
        // The buffer itself never filled: occupancy stayed below 100 kB.
        assert!(s.max_queue_bytes < 100_000);
    }

    #[test]
    fn red_always_drops_above_max_threshold() {
        let mut l = red_link(1_000_000.0, 1_000.0, 10_000.0);
        let now = SimTime::ZERO;
        let _ = l.enqueue(pkt(1000), now);
        // Push the EWMA well past max_th...
        for _ in 0..40 {
            let _ = l.enqueue(pkt(1000), now);
        }
        // ...then everything is dropped despite buffer headroom.
        let mut consecutive_drops = 0;
        for _ in 0..10 {
            if l.enqueue(pkt(1000), now) == Enqueue::Dropped {
                consecutive_drops += 1;
            }
        }
        assert_eq!(consecutive_drops, 10);
    }

    #[test]
    fn red_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut l = Link::new(
                LinkConfig {
                    rate: Rate::from_bytes_per_sec(1e6),
                    prop_delay: TimeDelta::from_millis(1.0),
                    buffer: Bytes::from_b(100_000.0),
                    qdisc: Qdisc::Red {
                        min_th: 2_000.0,
                        max_th: 50_000.0,
                        max_p: 0.3,
                        weight: 0.4,
                    },
                },
                seed,
            );
            let now = SimTime::ZERO;
            let _ = l.enqueue(pkt(1000), now);
            (0..50)
                .map(|_| l.enqueue(pkt(1000), now) == Enqueue::Dropped)
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(99), "different seeds should differ somewhere");
    }
}
