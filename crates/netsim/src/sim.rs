//! The discrete-event simulation core.

use serde::{Deserialize, Serialize};
use sss_sim::{EventQueue, SimTime};
use sss_stats::RateSeries;
use sss_units::{Bytes, TimeDelta};

use crate::config::SimConfig;
use crate::link::{Enqueue, Link, LinkStats};
use crate::packet::{FlowId, Packet, PacketKind};
use crate::tcp::{AckInfo, TcpAction, TcpReceiver, TcpSender, TcpSenderStats};

/// Specification of one TCP transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Index of the client host the flow originates from.
    pub client: u32,
    /// Payload volume to move.
    pub bytes: Bytes,
    /// Simulated start time.
    pub start: SimTime,
}

impl FlowSpec {
    /// Convenience constructor.
    pub fn new(client: u32, bytes: Bytes, start: SimTime) -> Self {
        FlowSpec {
            client,
            bytes,
            start,
        }
    }
}

/// Outcome of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowRecord {
    /// Flow identity.
    pub id: FlowId,
    /// Originating client index.
    pub client: u32,
    /// Payload bytes requested.
    pub bytes: u64,
    /// Scheduled start time.
    pub start: SimTime,
    /// When every payload byte had been cumulatively acknowledged.
    pub completion: Option<SimTime>,
    /// Sender statistics (retransmissions, timeouts, ...).
    pub tcp: TcpSenderStats,
}

impl FlowRecord {
    /// True when the transfer finished within the simulation horizon.
    pub fn completed(&self) -> bool {
        self.completion.is_some()
    }

    /// Flow completion time (start → fully acknowledged), the paper's
    /// per-transfer metric. `None` if the flow never finished.
    pub fn fct(&self) -> Option<TimeDelta> {
        self.completion.map(|c| c.since(self.start))
    }
}

/// One congestion-window trace sample (see
/// [`Simulator::enable_cwnd_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CwndSample {
    /// Sample time.
    pub at: SimTime,
    /// The flow sampled.
    pub flow: FlowId,
    /// Congestion window in bytes.
    pub cwnd: f64,
    /// Smoothed RTT in seconds, when an estimate exists.
    pub srtt_s: Option<f64>,
    /// True while the sender is in loss recovery.
    pub in_recovery: bool,
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Per-flow outcomes, indexed by [`FlowId`].
    pub flows: Vec<FlowRecord>,
    /// Bottleneck-link counters (the server NIC the paper saturates).
    pub bottleneck: LinkStats,
    /// Per-client access-link counters.
    pub access: Vec<LinkStats>,
    /// Payload bytes arriving at the server, binned over time — the
    /// simulated equivalent of the paper's interface-counter samples.
    pub delivered: RateSeries,
    /// Simulated time of the last processed event.
    pub end: SimTime,
    /// True when the run hit `max_sim_time` with events still pending.
    pub truncated: bool,
    /// Total events processed (diagnostic / benchmarking).
    pub events: u64,
    /// Congestion-window trace (empty unless tracing was enabled).
    pub cwnd_trace: Vec<CwndSample>,
    /// The configuration the run used.
    pub config: SimConfig,
}

impl SimReport {
    /// Mean bottleneck utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: TimeDelta) -> f64 {
        self.delivered.utilization_over(
            self.config.bottleneck.rate.as_bytes_per_sec(),
            horizon.as_secs(),
        )
    }

    /// Completion times of all completed flows, in seconds.
    pub fn fct_seconds(&self) -> Vec<f64> {
        self.flows
            .iter()
            .filter_map(|f| f.fct().map(|t| t.as_secs()))
            .collect()
    }

    /// The maximum flow completion time — `T_worst` in the paper.
    pub fn worst_fct(&self) -> Option<TimeDelta> {
        self.flows
            .iter()
            .filter_map(FlowRecord::fct)
            .max_by(|a, b| a.as_secs().total_cmp(&b.as_secs()))
    }

    /// True when every flow completed.
    pub fn all_completed(&self) -> bool {
        self.flows.iter().all(FlowRecord::completed)
    }
}

/// Event payload.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// A flow's scheduled start time arrived.
    FlowStart(FlowId),
    /// The access link of client `u32` finished serializing a packet.
    AccessTxDone(u32),
    /// The bottleneck link finished serializing a packet.
    BottleneckTxDone,
    /// A packet reached the bottleneck queue input.
    ArriveBottleneck(Packet),
    /// A packet reached the server NIC.
    ArriveServer(Packet),
    /// An acknowledgement (cumulative + optional SACK) reached the client.
    AckArrive(FlowId, AckInfo),
    /// Retransmission timer fired (valid only if `u64` matches the
    /// sender's current generation).
    RtoFire(FlowId, u64),
}

struct FlowState {
    spec: FlowSpec,
    sender: TcpSender,
    receiver: TcpReceiver,
    completion: Option<SimTime>,
}

/// The simulator: a star of clients behind access links, one shared
/// bottleneck, one server. See the crate docs for the topology rationale.
pub struct Simulator {
    cfg: SimConfig,
    access: Vec<Link>,
    bottleneck: Link,
    flows: Vec<FlowState>,
    queue: EventQueue<SimTime, EventKind>,
    now: SimTime,
    delivered: RateSeries,
    events: u64,
    /// Per-flow last-trace time when tracing is on.
    trace: Option<(u64, Vec<SimTime>, Vec<CwndSample>)>,
}

impl Simulator {
    /// Create a simulator with `clients` client hosts.
    ///
    /// # Panics
    /// Panics on an invalid configuration or zero clients.
    pub fn new(cfg: SimConfig, clients: u32) -> Self {
        cfg.validate().expect("invalid SimConfig");
        assert!(clients > 0, "need at least one client host");
        Simulator {
            cfg,
            // Per-link seeds only matter for RED's probabilistic drops;
            // fixed constants keep runs reproducible.
            access: (0..clients)
                .map(|i| Link::new(cfg.access, 0xACCE55 ^ (i as u64) << 8))
                .collect(),
            bottleneck: Link::new(cfg.bottleneck, 0xB0771E),
            flows: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delivered: RateSeries::new(cfg.counter_bin.as_secs()),
            events: 0,
            trace: None,
        }
    }

    /// Record a congestion-window sample per flow at most every
    /// `interval_ns` nanoseconds of simulated time (ACK-driven, so quiet
    /// flows produce no samples). Call before `run()`.
    pub fn enable_cwnd_trace(&mut self, interval_ns: u64) {
        self.trace = Some((interval_ns.max(1), Vec::new(), Vec::new()));
    }

    /// Number of client hosts.
    pub fn clients(&self) -> u32 {
        self.access.len() as u32
    }

    /// Register a flow; returns its id.
    ///
    /// # Panics
    /// Panics when the client index is out of range or the size is not a
    /// positive whole number of bytes.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(
            (spec.client as usize) < self.access.len(),
            "client {} out of range ({} clients)",
            spec.client,
            self.access.len()
        );
        let bytes = spec.bytes.as_b();
        assert!(
            // sss-lint: allow(D004, fract()==0.0 is the exact integrality test)
            bytes >= 1.0 && bytes.fract() == 0.0 && bytes.is_finite(),
            "flow size must be a positive whole number of bytes, got {bytes}"
        );
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowState {
            spec,
            sender: TcpSender::new(self.cfg.tcp, bytes as u64),
            receiver: TcpReceiver::new(),
            completion: None,
        });
        self.schedule(spec.start, EventKind::FlowStart(id));
        id
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        self.queue.schedule(at, kind);
    }

    /// Run to completion (or until `max_sim_time`) and report.
    pub fn run(mut self) -> SimReport {
        let horizon = SimTime::ZERO + self.cfg.max_sim_time;
        let mut truncated = false;
        while let Some((at, kind)) = self.queue.pop() {
            if at > horizon {
                truncated = true;
                break;
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.events += 1;
            self.dispatch(kind);
        }
        SimReport {
            flows: self
                .flows
                .iter()
                .enumerate()
                .map(|(i, f)| FlowRecord {
                    id: FlowId(i as u32),
                    client: f.spec.client,
                    bytes: f.spec.bytes.as_b() as u64,
                    start: f.spec.start,
                    completion: f.completion,
                    tcp: f.sender.stats(),
                })
                .collect(),
            bottleneck: self.bottleneck.stats(),
            access: self.access.iter().map(Link::stats).collect(),
            delivered: self.delivered,
            end: self.now,
            truncated,
            events: self.events,
            cwnd_trace: self.trace.map(|(_, _, s)| s).unwrap_or_default(),
            config: self.cfg,
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::FlowStart(id) => {
                let now = self.now;
                let actions = self.flows[id.0 as usize].sender.on_start(now);
                self.apply(id, actions);
            }
            EventKind::AccessTxDone(client) => {
                let now = self.now;
                let (pkt, next) = self.access[client as usize].tx_complete(now);
                if let Some(done) = next {
                    self.schedule(done, EventKind::AccessTxDone(client));
                }
                let arrive = now + self.access[client as usize].prop_delay_ns();
                self.schedule(arrive, EventKind::ArriveBottleneck(pkt));
            }
            EventKind::ArriveBottleneck(pkt) => {
                match self.bottleneck.enqueue(pkt, self.now) {
                    Enqueue::StartTx(done) => {
                        self.schedule(done, EventKind::BottleneckTxDone);
                    }
                    Enqueue::Queued => {}
                    Enqueue::Dropped => {} // TCP recovers via dup-acks/RTO
                }
            }
            EventKind::BottleneckTxDone => {
                let now = self.now;
                let (pkt, next) = self.bottleneck.tx_complete(now);
                if let Some(done) = next {
                    self.schedule(done, EventKind::BottleneckTxDone);
                }
                let arrive = now + self.bottleneck.prop_delay_ns();
                self.schedule(arrive, EventKind::ArriveServer(pkt));
            }
            EventKind::ArriveServer(pkt) => {
                if let PacketKind::Data { seq, .. } = pkt.kind {
                    let now = self.now;
                    self.delivered
                        .record(now.as_secs(), pkt.payload_bytes as f64);
                    let flow = &mut self.flows[pkt.flow.0 as usize];
                    let info = flow.receiver.on_data(seq, pkt.payload_bytes);
                    let ack_at = now + self.cfg.ack_delay;
                    self.schedule(ack_at, EventKind::AckArrive(pkt.flow, info));
                }
            }
            EventKind::AckArrive(id, info) => {
                let now = self.now;
                let actions = self.flows[id.0 as usize].sender.on_ack(info, now);
                self.apply(id, actions);
                if let Some((interval, last, samples)) = &mut self.trace {
                    let idx = id.0 as usize;
                    if last.len() <= idx {
                        last.resize(idx + 1, SimTime::ZERO);
                    }
                    if last[idx] == SimTime::ZERO
                        || now.as_nanos() >= last[idx].as_nanos() + *interval
                    {
                        last[idx] = now;
                        let sender = &self.flows[idx].sender;
                        samples.push(CwndSample {
                            at: now,
                            flow: id,
                            cwnd: sender.cwnd(),
                            srtt_s: sender.srtt().map(|t| t.as_secs()),
                            in_recovery: sender.in_recovery(),
                        });
                    }
                }
            }
            EventKind::RtoFire(id, gen) => {
                let now = self.now;
                let actions = self.flows[id.0 as usize].sender.on_rto(gen, now);
                self.apply(id, actions);
            }
        }
    }

    fn apply(&mut self, id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send {
                    seq,
                    len,
                    retransmit,
                } => {
                    let client = self.flows[id.0 as usize].spec.client;
                    let pkt = Packet::data(id, seq, len, retransmit);
                    match self.access[client as usize].enqueue(pkt, self.now) {
                        Enqueue::StartTx(done) => {
                            self.schedule(done, EventKind::AccessTxDone(client));
                        }
                        Enqueue::Queued => {}
                        // Sender qdisc overflow: the segment never leaves
                        // the host; the RTO will recover it.
                        Enqueue::Dropped => {}
                    }
                }
                TcpAction::ArmTimer { at, gen } => {
                    self.schedule(at, EventKind::RtoFire(id, gen));
                }
                TcpAction::Complete => {
                    self.flows[id.0 as usize].completion = Some(self.now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_units::Rate;

    fn one_flow_report(mb: f64) -> SimReport {
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 1);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(mb), SimTime::ZERO));
        sim.run()
    }

    #[test]
    fn single_flow_completes() {
        let report = one_flow_report(1.0);
        assert!(report.all_completed());
        assert!(!report.truncated);
        assert_eq!(report.flows.len(), 1);
    }

    #[test]
    fn fct_at_least_theoretical_minimum() {
        let report = one_flow_report(1.0);
        let min = (Bytes::from_mb(1.0) / Rate::from_gbps(1.0)).as_secs();
        let fct = report.flows[0].fct().unwrap().as_secs();
        assert!(fct >= min, "fct {fct} < theoretical {min}");
        // ... but within a small multiple for an uncontended link.
        assert!(fct < min + 1.0, "fct {fct} unreasonably slow");
    }

    #[test]
    fn bytes_conserved() {
        let report = one_flow_report(2.0);
        // Everything the sender pushed eventually crossed the bottleneck.
        let payload = 2_000_000u64;
        assert!(report.bottleneck.tx_bytes >= payload); // payload + headers
        assert!((report.delivered.total_bytes() - payload as f64).abs() < 1.0);
    }

    #[test]
    fn single_flow_reaches_link_rate() {
        // A 20 MB transfer is long enough to amortize slow start on the
        // small-test config (1 Gbps, 4 ms RTT).
        let report = one_flow_report(20.0);
        let fct = report.flows[0].fct().unwrap().as_secs();
        let ideal = (Bytes::from_mb(20.0) / Rate::from_gbps(1.0)).as_secs();
        let efficiency = ideal / fct;
        assert!(
            efficiency > 0.8,
            "single-flow efficiency too low: {efficiency} (fct {fct}, ideal {ideal})"
        );
    }

    #[test]
    fn two_flows_work_conserving() {
        // Reno with a small drop-tail buffer is NOT fair over short
        // transfers (loss-phase effects let one flow win slow start — the
        // very "stochastic network performance" the paper warns about), so
        // assert work conservation rather than per-flow fairness: moving
        // 2× the data through one link takes ~2× the solo time overall.
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 2);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(10.0), SimTime::ZERO));
        sim.add_flow(FlowSpec::new(1, Bytes::from_mb(10.0), SimTime::ZERO));
        let report = sim.run();
        assert!(report.all_completed());
        let worst = report.worst_fct().unwrap().as_secs();
        let solo = one_flow_report(10.0).flows[0].fct().unwrap().as_secs();
        assert!(worst > 1.4 * solo, "worst {worst} vs solo {solo}");
        assert!(worst < 6.0 * solo, "worst {worst} vs solo {solo}");
    }

    #[test]
    fn overload_causes_drops_and_retransmits_but_completes() {
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 8);
        for c in 0..8 {
            sim.add_flow(FlowSpec::new(c, Bytes::from_mb(5.0), SimTime::ZERO));
        }
        let report = sim.run();
        assert!(report.all_completed(), "flows starved: {report:?}");
        assert!(
            report.bottleneck.dropped_pkts > 0,
            "8 simultaneous slow-starting flows must overflow a 500 kB buffer"
        );
        let retx: u64 = report.flows.iter().map(|f| f.tcp.bytes_retransmitted).sum();
        assert!(retx > 0, "drops must force retransmissions");
    }

    #[test]
    fn congestion_inflates_worst_fct() {
        let solo = one_flow_report(5.0).flows[0].fct().unwrap().as_secs();
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 8);
        for c in 0..8 {
            sim.add_flow(FlowSpec::new(c, Bytes::from_mb(5.0), SimTime::ZERO));
        }
        let report = sim.run();
        let worst = report.worst_fct().unwrap().as_secs();
        assert!(
            worst > 4.0 * solo,
            "8-way congestion should inflate worst FCT well past solo ({worst} vs {solo})"
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = |offset_ns: u64| {
            let cfg = SimConfig::small_test();
            let mut sim = Simulator::new(cfg, 3);
            for c in 0..3 {
                sim.add_flow(FlowSpec::new(
                    c,
                    Bytes::from_mb(3.0),
                    SimTime::from_nanos(c as u64 * offset_ns),
                ));
            }
            sim.run()
        };
        let a = run(1000);
        let b = run(1000);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.events, b.events);
        assert_eq!(a.bottleneck, b.bottleneck);
    }

    #[test]
    fn staggered_starts_recorded() {
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 2);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(1.0), SimTime::ZERO));
        sim.add_flow(FlowSpec::new(
            1,
            Bytes::from_mb(1.0),
            SimTime::from_millis(500),
        ));
        let report = sim.run();
        assert_eq!(report.flows[1].start, SimTime::from_millis(500));
        assert!(report.flows[1].completion.unwrap() > SimTime::from_millis(500));
    }

    #[test]
    fn pathological_buffer_still_completes() {
        // Failure injection: a bottleneck buffer holding ~2 packets forces
        // loss on nearly every burst; RTO resilience must still drain the
        // transfer (slowly), never deadlock.
        let mut cfg = SimConfig::small_test();
        cfg.bottleneck.buffer = Bytes::from_b(3000.0);
        let mut sim = Simulator::new(cfg, 2);
        for c in 0..2 {
            sim.add_flow(FlowSpec::new(c, Bytes::from_kb(400.0), SimTime::ZERO));
        }
        let report = sim.run();
        assert!(report.all_completed(), "tiny buffer must not deadlock");
        assert!(report.bottleneck.dropped_pkts > 0);
        let timeouts: u64 = report.flows.iter().map(|f| f.tcp.timeouts).sum();
        let fastrtx: u64 = report.flows.iter().map(|f| f.tcp.fast_retransmits).sum();
        assert!(timeouts + fastrtx > 0, "recovery machinery must engage");
    }

    #[test]
    fn horizon_truncates_unfinished_flows() {
        let mut cfg = SimConfig::small_test();
        cfg.max_sim_time = TimeDelta::from_millis(1.0); // absurdly short
        let mut sim = Simulator::new(cfg, 1);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(50.0), SimTime::ZERO));
        let report = sim.run();
        assert!(report.truncated);
        assert!(!report.all_completed());
        assert!(report.flows[0].fct().is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_client_index_panics() {
        let mut sim = Simulator::new(SimConfig::small_test(), 1);
        sim.add_flow(FlowSpec::new(5, Bytes::from_mb(1.0), SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "whole number of bytes")]
    fn fractional_size_panics() {
        let mut sim = Simulator::new(SimConfig::small_test(), 1);
        sim.add_flow(FlowSpec::new(0, Bytes::from_b(10.5), SimTime::ZERO));
    }

    #[test]
    fn cwnd_trace_records_samples() {
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 1);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(5.0), SimTime::ZERO));
        sim.enable_cwnd_trace(1_000_000); // 1 ms
        let report = sim.run();
        assert!(!report.cwnd_trace.is_empty());
        // Samples are time-ordered, positive-cwnd and rate-limited.
        for w in report.cwnd_trace.windows(2) {
            assert!(w[1].at >= w[0].at);
            assert!(w[1].at.as_nanos() - w[0].at.as_nanos() >= 1_000_000);
        }
        assert!(report.cwnd_trace.iter().all(|s| s.cwnd > 0.0));
        // Slow start is visible: cwnd grows across the first samples.
        let first = report.cwnd_trace.first().unwrap().cwnd;
        let max = report.cwnd_trace.iter().map(|s| s.cwnd).fold(0.0, f64::max);
        assert!(max > 2.0 * first, "expected visible window growth");
    }

    #[test]
    fn trace_disabled_by_default() {
        let report = one_flow_report(1.0);
        assert!(report.cwnd_trace.is_empty());
    }

    #[test]
    fn red_bottleneck_reduces_queue_peak() {
        let mut cfg = SimConfig::small_test();
        let buffer = cfg.bottleneck.buffer.as_b();
        cfg.bottleneck.qdisc = crate::config::Qdisc::Red {
            min_th: buffer * 0.2,
            max_th: buffer * 0.6,
            max_p: 0.1,
            weight: 0.002,
        };
        cfg.validate().unwrap();
        let run = |cfg: SimConfig| {
            let mut sim = Simulator::new(cfg, 8);
            for c in 0..8 {
                sim.add_flow(FlowSpec::new(c, Bytes::from_mb(5.0), SimTime::ZERO));
            }
            sim.run()
        };
        let red = run(cfg);
        let droptail = run(SimConfig::small_test());
        assert!(red.all_completed());
        assert!(
            red.bottleneck.early_drops > 0,
            "RED must act under 8-way congestion"
        );
        // AQM keeps the standing queue below the tail-drop peak.
        assert!(
            red.bottleneck.max_queue_bytes < droptail.bottleneck.max_queue_bytes,
            "RED {} vs drop-tail {}",
            red.bottleneck.max_queue_bytes,
            droptail.bottleneck.max_queue_bytes
        );
    }

    #[test]
    fn utilization_reflects_offered_load() {
        // One 5 MB flow on a 1 Gbps link over a 1 s horizon: 40 Mb / 1 Gb = 4%.
        let report = one_flow_report(5.0);
        let u = report.utilization(TimeDelta::from_secs(1.0));
        assert!((u - 0.04).abs() < 0.005, "utilization {u}");
    }

    #[test]
    fn parallel_flows_same_client_share_access_link() {
        let cfg = SimConfig::small_test();
        let mut sim = Simulator::new(cfg, 1);
        for _ in 0..4 {
            sim.add_flow(FlowSpec::new(0, Bytes::from_mb(2.0), SimTime::ZERO));
        }
        let report = sim.run();
        assert!(report.all_completed());
        assert_eq!(report.access.len(), 1);
        // All four flows' packets went through the one NIC.
        assert!(report.access[0].tx_bytes as f64 >= 8.0e6);
    }
}
