//! Simulator configuration and the paper's testbed presets.

use serde::{Deserialize, Serialize};
use sss_units::{Bytes, Rate, TimeDelta};

/// Queue discipline for a link's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Qdisc {
    /// Plain FIFO with tail drop at the buffer limit — what the paper's
    /// testbed switches do, and the source of its synchronized-loss tails.
    DropTail,
    /// Random Early Detection (Floyd & Jacobson '93, simplified): drop
    /// probabilistically once the EWMA queue occupancy passes `min_th`,
    /// always past `max_th`. Included as an ablation: AQM is the
    /// classical remedy for exactly the tail behaviour the paper
    /// measures.
    Red {
        /// EWMA threshold (bytes) where probabilistic dropping begins.
        min_th: f64,
        /// EWMA threshold (bytes) where dropping becomes certain.
        max_th: f64,
        /// Drop probability as the average crosses `max_th`.
        max_p: f64,
        /// EWMA weight for the average queue estimate (e.g. 0.002).
        weight: f64,
    },
}

/// One unidirectional link: rate, propagation delay, and a byte-limited
/// queue with a configurable discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Serialization rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub prop_delay: TimeDelta,
    /// Queue capacity in bytes (hard limit regardless of discipline).
    pub buffer: Bytes,
    /// Queue discipline.
    pub qdisc: Qdisc,
}

impl LinkConfig {
    /// Validate: positive finite rate, non-negative delay, positive buffer.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate.as_bytes_per_sec() <= 0.0 || !self.rate.is_finite() {
            return Err(format!("link rate must be positive, got {}", self.rate));
        }
        if self.prop_delay.is_sign_negative() || !self.prop_delay.is_finite() {
            return Err(format!(
                "propagation delay must be non-negative, got {}",
                self.prop_delay
            ));
        }
        if self.buffer.as_b() <= 0.0 || !self.buffer.is_finite() {
            return Err(format!("buffer must be positive, got {}", self.buffer));
        }
        if let Qdisc::Red {
            min_th,
            max_th,
            max_p,
            weight,
        } = self.qdisc
        {
            if !(0.0 < min_th && min_th < max_th && max_th <= self.buffer.as_b()) {
                return Err(format!(
                    "RED thresholds must satisfy 0 < min_th < max_th <= buffer, got \
                     {min_th}/{max_th} with buffer {}",
                    self.buffer
                ));
            }
            if !(0.0 < max_p && max_p <= 1.0) {
                return Err(format!("RED max_p must be in (0,1], got {max_p}"));
            }
            if !(0.0 < weight && weight <= 1.0) {
                return Err(format!("RED weight must be in (0,1], got {weight}"));
            }
        }
        Ok(())
    }
}

/// TCP sender parameters (Reno/NewReno).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes. The paper's MTU-9000 jumbo frames
    /// give an MSS of 8,948 B after 52 B of headers.
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928 default: 10).
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes (effectively unbounded).
    pub initial_ssthresh: f64,
    /// Upper bound on cwnd in bytes (models the socket-buffer limit of a
    /// tuned DTN; 2×BDP on the paper's testbed).
    pub max_cwnd: f64,
    /// Minimum retransmission timeout (Linux default 200 ms).
    pub min_rto: TimeDelta,
    /// Maximum retransmission timeout after exponential back-off.
    pub max_rto: TimeDelta,
    /// Initial RTO before any RTT sample (RFC 6298: 1 s).
    pub initial_rto: TimeDelta,
    /// Congestion-avoidance algorithm.
    pub algo: crate::tcp::CongestionAlgo,
    /// Enable the HyStart delay-based slow-start exit (Linux default on).
    pub hystart: bool,
}

impl TcpConfig {
    /// MSS for MTU-9000 jumbo frames.
    pub const JUMBO_MSS: u32 = 8_948;
    /// MSS for standard 1500-byte Ethernet.
    pub const STANDARD_MSS: u32 = 1_448;

    /// Default TCP tuning for a given bandwidth-delay product.
    pub fn for_bdp(bdp: Bytes) -> Self {
        TcpConfig {
            mss: Self::JUMBO_MSS,
            initial_cwnd_segments: 10,
            initial_ssthresh: f64::INFINITY,
            max_cwnd: 2.0 * bdp.as_b(),
            min_rto: TimeDelta::from_millis(200.0),
            max_rto: TimeDelta::from_secs(60.0),
            initial_rto: TimeDelta::from_secs(1.0),
            algo: crate::tcp::CongestionAlgo::Cubic,
            hystart: true,
        }
    }

    /// Validate invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.mss == 0 {
            return Err("mss must be positive".into());
        }
        if self.initial_cwnd_segments == 0 {
            return Err("initial cwnd must be at least one segment".into());
        }
        if self.max_cwnd < self.mss as f64 {
            return Err("max_cwnd must hold at least one segment".into());
        }
        if self.min_rto.as_secs() <= 0.0 {
            return Err("min_rto must be positive".into());
        }
        if self.max_rto < self.min_rto {
            return Err("max_rto must be >= min_rto".into());
        }
        Ok(())
    }
}

/// Full simulator configuration: a star topology of identical client
/// access links feeding one shared bottleneck link into the server.
///
/// Data path: client NIC → access link → bottleneck queue → server.
/// ACK path: modeled as a pure delay (`ack_delay`) — the paper's
/// orchestrator guarantees "no contention on the server side", so return
/// traffic never queues.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Per-client access link (client NIC).
    pub access: LinkConfig,
    /// Shared bottleneck link (server NIC).
    pub bottleneck: LinkConfig,
    /// One-way delay for returning ACKs.
    pub ack_delay: TimeDelta,
    /// TCP sender parameters.
    pub tcp: TcpConfig,
    /// Hard stop for the event loop; flows unfinished at this point are
    /// reported as incomplete rather than looping forever.
    pub max_sim_time: TimeDelta,
    /// Width of the interface-counter sampling bins.
    pub counter_bin: TimeDelta,
}

impl SimConfig {
    /// The paper's testbed (Table 1 / Table 2):
    /// 25 Gbps NICs, 16 ms RTT (8 ms each way), MTU 9000,
    /// bottleneck buffer of one bandwidth-delay product (50 MB).
    pub fn paper_testbed() -> Self {
        let rate = Rate::from_gbps(25.0);
        let one_way = TimeDelta::from_millis(8.0);
        let bdp = rate * TimeDelta::from_millis(16.0); // 50 MB
        SimConfig {
            access: LinkConfig {
                rate,
                // LAN hop from the client VM to the switch.
                prop_delay: TimeDelta::from_micros(50.0),
                // Sender-side queue (qdisc + NIC ring): generous but finite.
                buffer: Bytes::from_mb(64.0),
                qdisc: Qdisc::DropTail,
            },
            bottleneck: LinkConfig {
                rate,
                prop_delay: one_way,
                buffer: bdp,
                qdisc: Qdisc::DropTail,
            },
            ack_delay: one_way,
            tcp: TcpConfig::for_bdp(bdp),
            max_sim_time: TimeDelta::from_secs(300.0),
            counter_bin: TimeDelta::from_millis(100.0),
        }
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// 1 Gbps, 4 ms RTT, standard MSS, 500 kB bottleneck buffer.
    pub fn small_test() -> Self {
        let rate = Rate::from_gbps(1.0);
        let one_way = TimeDelta::from_millis(2.0);
        let bdp = rate * TimeDelta::from_millis(4.0);
        SimConfig {
            access: LinkConfig {
                rate,
                prop_delay: TimeDelta::from_micros(10.0),
                buffer: Bytes::from_mb(2.0),
                qdisc: Qdisc::DropTail,
            },
            bottleneck: LinkConfig {
                rate,
                prop_delay: one_way,
                buffer: bdp, // 500 kB
                qdisc: Qdisc::DropTail,
            },
            ack_delay: one_way,
            tcp: TcpConfig {
                mss: TcpConfig::STANDARD_MSS,
                ..TcpConfig::for_bdp(bdp)
            },
            max_sim_time: TimeDelta::from_secs(120.0),
            counter_bin: TimeDelta::from_millis(100.0),
        }
    }

    /// Round-trip time implied by the propagation delays (no queueing).
    pub fn base_rtt(&self) -> TimeDelta {
        self.access.prop_delay + self.bottleneck.prop_delay + self.ack_delay
    }

    /// Bandwidth-delay product of the bottleneck at the base RTT.
    pub fn bdp(&self) -> Bytes {
        self.bottleneck.rate * self.base_rtt()
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.access.validate()?;
        self.bottleneck.validate()?;
        self.tcp.validate()?;
        if self.ack_delay.is_sign_negative() {
            return Err("ack_delay must be non-negative".into());
        }
        if self.max_sim_time.as_secs() <= 0.0 {
            return Err("max_sim_time must be positive".into());
        }
        if self.counter_bin.as_secs() <= 0.0 {
            return Err("counter_bin must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_table1() {
        let cfg = SimConfig::paper_testbed();
        assert!((cfg.bottleneck.rate.as_gbps() - 25.0).abs() < 1e-9);
        assert!((cfg.base_rtt().as_millis() - 16.05).abs() < 0.1);
        // BDP ≈ 50 MB.
        assert!((cfg.bdp().as_mb() - 50.0).abs() < 1.0);
        assert_eq!(cfg.tcp.mss, 8_948);
        cfg.validate().unwrap();
    }

    #[test]
    fn small_test_valid() {
        SimConfig::small_test().validate().unwrap();
    }

    #[test]
    fn link_validation() {
        let mut l = SimConfig::small_test().bottleneck;
        l.rate = Rate::ZERO;
        assert!(l.validate().is_err());
        let mut l2 = SimConfig::small_test().bottleneck;
        l2.buffer = Bytes::ZERO;
        assert!(l2.validate().is_err());
        let mut l3 = SimConfig::small_test().bottleneck;
        l3.prop_delay = TimeDelta::from_secs(-1.0);
        assert!(l3.validate().is_err());
    }

    #[test]
    fn tcp_validation() {
        let mut t = TcpConfig::for_bdp(Bytes::from_mb(1.0));
        t.validate().unwrap();
        t.mss = 0;
        assert!(t.validate().is_err());

        let mut t2 = TcpConfig::for_bdp(Bytes::from_mb(1.0));
        t2.max_cwnd = 10.0;
        assert!(t2.validate().is_err());

        let mut t3 = TcpConfig::for_bdp(Bytes::from_mb(1.0));
        t3.max_rto = TimeDelta::from_millis(1.0);
        assert!(t3.validate().is_err());
    }

    #[test]
    fn bdp_scales_with_rtt() {
        let cfg = SimConfig::paper_testbed();
        let expected = 25.0e9 / 8.0 * 0.016;
        assert!((cfg.bdp().as_b() - expected).abs() / expected < 0.02);
    }
}
