//! Simulation clock: integer nanoseconds.
//!
//! Integer time makes event ordering exact and runs reproducible across
//! platforms; `f64` seconds are converted at the boundary only.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};
use sss_units::TimeDelta;

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant (~584 simulated years).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest ns).
    ///
    /// # Panics
    /// Panics on negative or non-finite input: simulated time starts at 0.
    pub fn from_secs(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "SimTime must be non-negative and finite, got {s}"
        );
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert to a [`TimeDelta`] measured from the epoch.
    #[inline]
    pub fn as_delta(self) -> TimeDelta {
        TimeDelta::from_secs(self.as_secs())
    }

    /// Saturating difference `self - earlier` as a [`TimeDelta`].
    #[inline]
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta::from_secs(self.0.saturating_sub(earlier.0) as f64 / 1e9)
    }

    /// Convert a (non-negative) [`TimeDelta`] into an offset, rounding to ns.
    ///
    /// # Panics
    /// Panics on negative or non-finite deltas.
    pub fn delta_to_nanos(d: TimeDelta) -> u64 {
        let s = d.as_secs();
        assert!(
            s >= 0.0 && s.is_finite(),
            "cannot schedule a negative/non-finite delay: {s}"
        );
        (s * 1e9).round() as u64
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    /// Advance by `rhs` nanoseconds (saturating).
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_add(rhs))
    }
}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    /// Advance by a (non-negative) time delta.
    #[inline]
    fn add(self, rhs: TimeDelta) -> SimTime {
        self + SimTime::delta_to_nanos(rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub for SimTime {
    type Output = TimeDelta;
    /// Saturating difference as a [`TimeDelta`].
    #[inline]
    fn sub(self, rhs: SimTime) -> TimeDelta {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs(0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs(-0.1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + 500u64;
        assert_eq!(t.as_nanos(), 10_000_500);
        let dt = SimTime::from_millis(26) - SimTime::from_millis(10);
        assert!((dt.as_millis() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn subtraction_saturates() {
        let dt = SimTime::from_millis(1) - SimTime::from_millis(5);
        assert_eq!(dt.as_secs(), 0.0);
    }

    #[test]
    fn delta_roundtrip() {
        let d = TimeDelta::from_millis(16.0);
        assert_eq!(SimTime::delta_to_nanos(d), 16_000_000);
        let t = SimTime::ZERO + d;
        assert_eq!(t.as_delta().as_millis(), 16.0);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::from_nanos(5), SimTime::from_nanos(5));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(160).to_string(), "t=0.160000s");
    }
}
