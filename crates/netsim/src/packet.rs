//! Packets and flow identifiers.

use serde::{Deserialize, Serialize};

/// Identifies one TCP flow within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// A data segment: `seq` is the byte offset of the first payload byte.
    Data {
        /// Byte offset of the segment's first byte in the flow.
        seq: u64,
        /// True when this is a retransmission (excluded from RTT samples,
        /// per Karn's algorithm).
        retransmit: bool,
    },
    /// A cumulative acknowledgement.
    Ack {
        /// All bytes below this offset have been received in order.
        cum_ack: u64,
    },
}

/// A simulated packet.
///
/// `wire_bytes` is what occupies link capacity and queue space: payload
/// plus header overhead. With the paper's MTU-9000 jumbo frames the data
/// MSS is 8,948 B and headers add 52 B (Ethernet + IPv4 + TCP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Payload byte count (0 for pure ACKs).
    pub payload_bytes: u32,
    /// Bytes occupied on the wire (payload + headers).
    pub wire_bytes: u32,
    /// Segment or acknowledgement content.
    pub kind: PacketKind,
}

impl Packet {
    /// Header overhead assumed per packet (Ethernet 14 + IPv4 20 + TCP 20,
    /// rounded with minimal framing): 52 bytes. Checksum/preamble effects
    /// are below the model's resolution.
    pub const HEADER_BYTES: u32 = 52;

    /// Build a data segment.
    pub fn data(flow: FlowId, seq: u64, payload: u32, retransmit: bool) -> Self {
        Packet {
            flow,
            payload_bytes: payload,
            wire_bytes: payload + Self::HEADER_BYTES,
            kind: PacketKind::Data { seq, retransmit },
        }
    }

    /// Build a pure acknowledgement.
    pub fn ack(flow: FlowId, cum_ack: u64) -> Self {
        Packet {
            flow,
            payload_bytes: 0,
            wire_bytes: Self::HEADER_BYTES + 14, // ACK with options ≈ 66 B
            kind: PacketKind::Ack { cum_ack },
        }
    }

    /// True for data segments.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_wire_size() {
        let p = Packet::data(FlowId(1), 0, 8948, false);
        assert_eq!(p.wire_bytes, 9000);
        assert!(p.is_data());
    }

    #[test]
    fn ack_packet() {
        let p = Packet::ack(FlowId(2), 12345);
        assert_eq!(p.payload_bytes, 0);
        assert_eq!(p.wire_bytes, 66);
        assert!(!p.is_data());
        match p.kind {
            PacketKind::Ack { cum_ack } => assert_eq!(cum_ack, 12345),
            _ => panic!("expected ack"),
        }
    }

    #[test]
    fn retransmit_flag_preserved() {
        let p = Packet::data(FlowId(0), 100, 500, true);
        match p.kind {
            PacketKind::Data { seq, retransmit } => {
                assert_eq!(seq, 100);
                assert!(retransmit);
            }
            _ => panic!("expected data"),
        }
    }
}
