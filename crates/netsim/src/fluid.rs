//! Flow-level **fluid** network simulation: max-min fair progressive
//! filling over the same star topology as the packet simulator.
//!
//! Where [`Simulator`](crate::Simulator) steps per packet — slow start,
//! loss, retransmission — the [`FluidSimulator`] treats every active
//! flow as a fluid stream receiving its max-min fair share of the access
//! and bottleneck capacities, and advances time analytically from one
//! rate-change event (a flow starting or completing) to the next. A run
//! costs `O(flows² · clients)` arithmetic instead of `O(packets)` events.
//!
//! The fluid answer is the **ideal-transport floor**: no headers, no
//! slow start, no queueing or loss, propagation ignored. Every per-flow
//! completion time is therefore a lower bound on the packet simulator's
//! (the differential tests below hold it to that), and for long
//! transfers on an uncontended path the two converge to within TCP's
//! protocol overheads. Use it the way [`Fidelity::Hybrid`] does in the
//! movement pipelines: trust the fluid number where the transport is
//! known to be efficient, fall back to packet level where loss dynamics
//! matter.
//!
//! [`Fidelity::Hybrid`]: sss_sim::Fidelity

use serde::{Deserialize, Serialize};
use sss_units::TimeDelta;

use crate::config::SimConfig;
use crate::sim::FlowSpec;

/// Max-min fair **progressive filling**: distribute `capacity` across
/// flows whose individual demands are bounded by `caps`, so that no flow
/// can be granted more without taking from a flow with an equal or
/// smaller share.
///
/// Repeatedly offers every unfrozen flow an equal share of the remaining
/// capacity; flows whose cap is at or under the offer freeze at their cap
/// (the capacity they decline is redistributed), and the rest split what
/// is left evenly. This is the allocation kernel behind
/// [`FluidSimulator`]'s shared-bottleneck mechanics, exported so other
/// layers (the multi-tenant fleet simulator in `sss-loadgen`) share the
/// exact same arithmetic.
///
/// A frozen flow's rate is assigned as `caps[i]` verbatim — bit-equal to
/// the demand, which is what lets callers distinguish "granted its full
/// demand" from "clipped by contention" with an ordinary `<` comparison.
///
/// ```
/// use sss_netsim::progressive_fill;
///
/// // 10 units across demands [2, 9, 9]: flow 0 freezes at 2, the
/// // other two split the remaining 8.
/// assert_eq!(progressive_fill(10.0, &[2.0, 9.0, 9.0]), vec![2.0, 4.0, 4.0]);
/// ```
pub fn progressive_fill(capacity: f64, caps: &[f64]) -> Vec<f64> {
    let mut rates = vec![0.0f64; caps.len()];
    let mut frozen = vec![false; caps.len()];
    loop {
        let open = frozen.iter().filter(|f| !**f).count();
        if open == 0 {
            break;
        }
        let used: f64 = rates
            .iter()
            .zip(&frozen)
            .filter(|(_, f)| **f)
            .map(|(r, _)| r)
            .sum();
        let share = ((capacity - used) / open as f64).max(0.0);
        let mut froze_any = false;
        for i in 0..caps.len() {
            if !frozen[i] && caps[i] <= share {
                rates[i] = caps[i];
                frozen[i] = true;
                froze_any = true;
            }
        }
        if !froze_any {
            for i in 0..caps.len() {
                if !frozen[i] {
                    rates[i] = share;
                }
            }
            break;
        }
    }
    rates
}

/// Outcome of one fluid flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidFlowRecord {
    /// Originating client index.
    pub client: u32,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Scheduled start time, seconds.
    pub start_s: f64,
    /// When the last fluid byte crossed the bottleneck, seconds.
    pub completion_s: f64,
}

impl FluidFlowRecord {
    /// Flow completion time (start → last byte), the paper's per-transfer
    /// metric.
    pub fn fct(&self) -> TimeDelta {
        TimeDelta::from_secs(self.completion_s - self.start_s)
    }
}

/// Result of a fluid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidReport {
    /// Per-flow outcomes, in registration order.
    pub flows: Vec<FluidFlowRecord>,
    /// When the last flow drained, seconds.
    pub end_s: f64,
}

impl FluidReport {
    /// The maximum flow completion time — `T_worst` in the paper.
    pub fn worst_fct(&self) -> Option<TimeDelta> {
        self.flows
            .iter()
            .map(FluidFlowRecord::fct)
            .max_by(|a, b| a.as_secs().total_cmp(&b.as_secs()))
    }
}

/// The fluid counterpart of [`Simulator`](crate::Simulator): same star
/// topology and [`FlowSpec`] vocabulary, flow-level fluid mechanics.
///
/// ```
/// use sss_netsim::{FluidSimulator, FlowSpec, SimConfig, SimTime};
/// use sss_units::{Bytes, Rate};
///
/// let mut sim = FluidSimulator::new(SimConfig::small_test(), 2);
/// sim.add_flow(FlowSpec::new(0, Bytes::from_mb(1.0), SimTime::ZERO));
/// sim.add_flow(FlowSpec::new(1, Bytes::from_mb(1.0), SimTime::ZERO));
/// let report = sim.run();
/// // Two 1 MB flows share the 1 Gbps (125 MB/s) bottleneck fairly:
/// // both drain together after 2 MB / 125 MB/s = 16 ms.
/// assert!((report.end_s - 0.016).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FluidSimulator {
    cfg: SimConfig,
    clients: u32,
    flows: Vec<FlowSpec>,
}

impl FluidSimulator {
    /// Create a fluid simulator with `clients` client hosts.
    ///
    /// # Panics
    /// Panics on an invalid configuration or zero clients.
    pub fn new(cfg: SimConfig, clients: u32) -> Self {
        cfg.validate().expect("invalid SimConfig");
        assert!(clients > 0, "need at least one client host");
        FluidSimulator {
            cfg,
            clients,
            flows: Vec::new(),
        }
    }

    /// Register a flow; returns its index in the report.
    ///
    /// # Panics
    /// Panics when the client index is out of range or the size is not
    /// positive.
    pub fn add_flow(&mut self, spec: FlowSpec) -> usize {
        assert!(
            spec.client < self.clients,
            "client {} out of range ({} clients)",
            spec.client,
            self.clients
        );
        assert!(
            spec.bytes.as_b() > 0.0 && spec.bytes.is_finite(),
            "flow size must be positive, got {}",
            spec.bytes
        );
        self.flows.push(spec);
        self.flows.len() - 1
    }

    /// Max-min fair rates for the active flows: progressive filling of
    /// the bottleneck, with each flow capped at its fair share of its
    /// client's access link.
    fn max_min_rates(&self, active: &[usize]) -> Vec<f64> {
        let access = self.cfg.access.rate.as_bytes_per_sec();
        let bottleneck = self.cfg.bottleneck.rate.as_bytes_per_sec();
        let mut per_client = vec![0u32; self.clients as usize];
        for &f in active {
            per_client[self.flows[f].client as usize] += 1;
        }
        // Each flow's hard cap: an equal share of its access link.
        let caps: Vec<f64> = active
            .iter()
            .map(|&f| access / per_client[self.flows[f].client as usize] as f64)
            .collect();
        progressive_fill(bottleneck, &caps)
    }

    /// Run to completion and report. Deterministic, and — because every
    /// active flow always receives a positive rate — the fluid system
    /// always drains: there is no truncation horizon.
    pub fn run(&self) -> FluidReport {
        let n = self.flows.len();
        let mut remaining: Vec<f64> = self.flows.iter().map(|f| f.bytes.as_b()).collect();
        let mut completion = vec![0.0f64; n];
        let starts: Vec<f64> = self.flows.iter().map(|f| f.start.as_secs()).collect();
        let mut started = vec![false; n];
        let mut t = 0.0f64;
        loop {
            for i in 0..n {
                if !started[i] && starts[i] <= t {
                    started[i] = true;
                }
            }
            let active: Vec<usize> = (0..n)
                .filter(|&i| started[i] && remaining[i] > 0.0)
                .collect();
            let next_start = (0..n)
                .filter(|&i| !started[i])
                .map(|i| starts[i])
                .fold(f64::INFINITY, f64::min);
            if active.is_empty() {
                if next_start.is_finite() {
                    t = next_start;
                    continue;
                }
                break;
            }
            let rates = self.max_min_rates(&active);
            // Analytic advance: the earliest of (a) a flow draining at
            // its current rate, (b) a scheduled start changing the
            // allocation. The two branches compare against `drain`
            // itself, not a re-derived `t_next - t`, so the flow that
            // defines the minimum always lands exactly on zero — a float
            // residue can never leave a sub-ulp remainder that would
            // stall the clock.
            let drain = active
                .iter()
                .zip(&rates)
                .map(|(&f, &r)| remaining[f] / r)
                .fold(f64::INFINITY, f64::min);
            if t + drain <= next_start {
                let t_next = t + drain;
                for (&f, &r) in active.iter().zip(&rates) {
                    if remaining[f] / r <= drain {
                        remaining[f] = 0.0;
                        completion[f] = t_next;
                    } else {
                        remaining[f] = (remaining[f] - r * drain).max(0.0);
                    }
                }
                t = t_next;
            } else {
                // A start arrives before any completion: integrate up to
                // it and recompute the allocation. `drain > dt` for every
                // active flow, so none can cross zero in this window.
                let dt = next_start - t;
                for (&f, &r) in active.iter().zip(&rates) {
                    remaining[f] = (remaining[f] - r * dt).max(0.0);
                }
                t = next_start;
            }
        }
        FluidReport {
            flows: self
                .flows
                .iter()
                .enumerate()
                .map(|(i, f)| FluidFlowRecord {
                    client: f.client,
                    bytes: f.bytes.as_b() as u64,
                    start_s: starts[i],
                    completion_s: completion[i],
                })
                .collect(),
            end_s: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::SimTime;
    use sss_units::{Bytes, Rate};

    fn mb(x: f64) -> Bytes {
        Bytes::from_mb(x)
    }

    #[test]
    fn single_flow_runs_at_the_bottleneck_rate() {
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 1);
        sim.add_flow(FlowSpec::new(0, mb(1.0), SimTime::ZERO));
        let r = sim.run();
        // 1 MB at 1 Gbps (= 125 MB/s): 8 ms.
        let ideal = (mb(1.0) / Rate::from_gbps(1.0)).as_secs();
        assert!((r.flows[0].fct().as_secs() - ideal).abs() < 1e-12);
    }

    #[test]
    fn same_client_flows_split_the_access_link() {
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 1);
        for _ in 0..4 {
            sim.add_flow(FlowSpec::new(0, mb(1.0), SimTime::ZERO));
        }
        let r = sim.run();
        // Four equal flows through one 1 Gbps NIC: all drain together at
        // 4 MB / 125 MB/s.
        let ideal = (mb(4.0) / Rate::from_gbps(1.0)).as_secs();
        for f in &r.flows {
            assert!((f.completion_s - ideal).abs() < 1e-12, "{f:?}");
        }
    }

    #[test]
    fn staggered_start_reshapes_the_allocation() {
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 2);
        sim.add_flow(FlowSpec::new(0, mb(1.0), SimTime::ZERO));
        sim.add_flow(FlowSpec::new(1, mb(1.0), SimTime::from_millis(4)));
        let r = sim.run();
        // Flow 0 moves 0.5 MB alone in 4 ms, then shares: the remaining
        // 0.5 MB at 62.5 MB/s takes 8 ms more — done at 12 ms. Flow 1
        // gets the full link after 0 finishes.
        assert!((r.flows[0].completion_s - 0.012).abs() < 1e-9, "{r:?}");
        assert!(r.flows[1].completion_s > r.flows[0].completion_s);
        assert!((r.end_s - r.flows[1].completion_s).abs() < 1e-12);
    }

    #[test]
    fn fluid_makespan_is_a_floor_under_the_packet_simulator() {
        // Same flow layout through both worlds. Per-flow FCTs are NOT
        // comparable under contention (TCP unfairness can let one flow
        // beat its max-min fair share), but the fluid system is
        // work-conserving with zero overhead, so its *makespan* — when
        // the last byte drains — is a hard floor under the packet
        // simulator's.
        let cfg = SimConfig::small_test();
        let layouts: &[&[(u32, f64, u64)]] = &[
            &[(0, 1.0, 0)],
            &[(0, 5.0, 0), (1, 5.0, 0)],
            &[(0, 2.0, 0), (0, 2.0, 0), (1, 3.0, 100)],
        ];
        for (clients, layout) in [(1u32, layouts[0]), (2, layouts[1]), (2, layouts[2])] {
            let mut fluid = FluidSimulator::new(cfg, clients);
            let mut packet = Simulator::new(cfg, clients);
            for &(c, size_mb, start_ms) in layout {
                let spec = FlowSpec::new(c, mb(size_mb), SimTime::from_millis(start_ms));
                fluid.add_flow(spec);
                packet.add_flow(spec);
            }
            let f = fluid.run();
            let p = packet.run();
            assert!(p.all_completed());
            let packet_end = p
                .flows
                .iter()
                .filter_map(|r| r.completion.map(|t| t.as_secs()))
                .fold(0.0, f64::max);
            assert!(
                f.end_s <= packet_end + 1e-9,
                "fluid makespan {} above packet makespan {packet_end} for {layout:?}",
                f.end_s
            );
        }
    }

    #[test]
    fn long_uncontended_flow_converges_to_the_packet_answer() {
        // A 50 MB transfer amortizes slow start: the packet simulator
        // lands within 25% of the fluid floor.
        let cfg = SimConfig::small_test();
        let mut fluid = FluidSimulator::new(cfg, 1);
        let mut packet = Simulator::new(cfg, 1);
        let spec = FlowSpec::new(0, mb(50.0), SimTime::ZERO);
        fluid.add_flow(spec);
        packet.add_flow(spec);
        let f = fluid.run().flows[0].fct().as_secs();
        let p = packet.run().flows[0].fct().unwrap().as_secs();
        let ratio = p / f;
        assert!(
            (1.0..1.25).contains(&ratio),
            "packet/fluid ratio {ratio} (packet {p}, fluid {f})"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let build = || {
            let mut sim = FluidSimulator::new(SimConfig::small_test(), 3);
            for c in 0..3 {
                sim.add_flow(FlowSpec::new(c, mb(3.0), SimTime::from_millis(c as u64)));
            }
            sim.run()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn max_min_respects_both_constraint_layers() {
        // 3 flows on client 0, 1 flow on client 1, equal link rates:
        // client 0's flows are access-capped at 1/3 each; the bottleneck
        // then grants the rest to client 1's flow, itself access-capped.
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 2);
        for _ in 0..3 {
            sim.add_flow(FlowSpec::new(0, mb(1.0), SimTime::ZERO));
        }
        sim.add_flow(FlowSpec::new(1, mb(1.0), SimTime::ZERO));
        let rates = sim.max_min_rates(&[0, 1, 2, 3]);
        let access = SimConfig::small_test().access.rate.as_bytes_per_sec();
        // Bottleneck splits 4 ways first (share = access/4), which is
        // under client 0's per-flow cap (access/3)? No: access/4 < access/3,
        // so nobody freezes and all four get an equal bottleneck share.
        for r in &rates {
            assert!((r - access / 4.0).abs() < 1e-6, "{rates:?}");
        }
    }

    #[test]
    fn progressive_fill_freezes_small_demands_at_their_cap() {
        let rates = progressive_fill(10.0, &[2.0, 9.0, 9.0]);
        // The frozen flow's grant is its cap *verbatim*, so `<` cleanly
        // separates clipped from unclipped flows.
        assert!(rates[0] >= 2.0);
        assert!((rates[1] - 4.0).abs() < 1e-12 && (rates[2] - 4.0).abs() < 1e-12);
        assert!(rates[1] < 9.0 && rates[2] < 9.0);
    }

    #[test]
    fn progressive_fill_grants_every_demand_when_capacity_suffices() {
        let caps = [1.0, 2.5, 0.0];
        let rates = progressive_fill(100.0, &caps);
        for (r, c) in rates.iter().zip(&caps) {
            assert!(r >= c, "{rates:?}");
        }
    }

    #[test]
    fn progressive_fill_empty_and_zero_capacity() {
        assert!(progressive_fill(5.0, &[]).is_empty());
        let rates = progressive_fill(0.0, &[1.0, 1.0]);
        for r in &rates {
            assert!(*r <= 0.0, "{rates:?}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 1);
        sim.add_flow(FlowSpec::new(0, mb(1.0), SimTime::ZERO));
        let report = sim.run();
        let json = serde_json::to_string(&report).unwrap();
        let back: FluidReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_client_rejected() {
        let mut sim = FluidSimulator::new(SimConfig::small_test(), 1);
        sim.add_flow(FlowSpec::new(3, mb(1.0), SimTime::ZERO));
    }
}
