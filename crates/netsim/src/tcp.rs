//! TCP sender and receiver state machines: Reno/CUBIC congestion control,
//! SACK-based loss recovery, HyStart slow-start exit.
//!
//! The sender is a pure state machine: events go in (`on_start`, `on_ack`,
//! `on_rto`), [`TcpAction`]s come out, and the simulator interprets them
//! (inject packet, arm timer). This keeps the congestion-control logic
//! unit-testable without a network.
//!
//! Implemented behaviour, modeled on the Linux stack the paper's testbed
//! ran (Ubuntu 22.04: CUBIC + HyStart + SACK):
//! * slow start with optional HyStart delay-based exit (RFC 9406's delay
//!   trigger) — without it, a batch of simultaneously-starting flows
//!   overshoots into synchronized loss far beyond anything real hardware
//!   shows,
//! * AIMD (Reno) or cubic (RFC 9438, simplified) congestion avoidance,
//! * fast retransmit on three duplicate ACKs or on SACK evidence, with a
//!   SACK scoreboard and pipe-based retransmission (RFC 6675, simplified
//!   to one SACK block per ACK) — without SACK, scattered drops take one
//!   round-trip *per hole* to repair and worst-case completion times blow
//!   up by an order of magnitude beyond the measured testbed behaviour,
//! * retransmission timeout with exponential back-off and go-back-N resend
//!   (RFC 6298),
//! * Karn's algorithm for RTT sampling, SRTT/RTTVAR RTO estimation.
//!
//! The paper's argument for "embracing complexity" (§3) is exactly that
//! these mechanisms — not propagation delay — dominate worst-case flow
//! completion times under congestion; this module is where that complexity
//! lives.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::TcpConfig;
use sss_sim::SimTime;
use sss_units::TimeDelta;

/// Congestion-avoidance algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionAlgo {
    /// Classic AIMD: one MSS per RTT additive increase, halve on loss.
    Reno,
    /// CUBIC (RFC 9438, simplified): cubic window growth around the last
    /// loss point, multiplicative decrease by β = 0.7. The Linux default,
    /// and what the paper's testbed actually ran.
    Cubic,
}

/// CUBIC constants (RFC 9438 recommended values).
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;

/// A single SACK block: the contiguous out-of-order byte range the
/// receiver most recently updated, `[start, end)`.
pub type SackBlock = (u64, u64);

/// Cumulative-ACK information produced by the receiver for each arriving
/// data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// All bytes below this offset have arrived in order.
    pub cum: u64,
    /// The out-of-order range (if any) that the triggering segment landed
    /// in — the first SACK block of a real TCP ACK.
    pub sack: Option<SackBlock>,
}

/// Instruction emitted by the sender for the simulator to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpAction {
    /// Transmit a segment of `len` payload bytes starting at `seq`.
    Send {
        /// Byte offset of the segment.
        seq: u64,
        /// Payload length.
        len: u32,
        /// True when the range had been sent before.
        retransmit: bool,
    },
    /// (Re-)arm the retransmission timer to fire at `at`; only a fire event
    /// carrying the matching `gen` is valid (stale timers are ignored).
    ArmTimer {
        /// Absolute fire time.
        at: SimTime,
        /// Generation that must match at fire time.
        gen: u64,
    },
    /// All payload bytes have been cumulatively acknowledged.
    Complete,
}

/// Sender-side statistics for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpSenderStats {
    /// Payload bytes sent for the first time.
    pub bytes_sent: u64,
    /// Payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Fast-retransmit episodes entered.
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Slow-start exits forced by the HyStart delay heuristic.
    pub hystart_exits: u64,
}

/// Byte-range set backed by a `BTreeMap<start, end>` of disjoint ranges.
#[derive(Debug, Clone, Default)]
struct RangeSet {
    ranges: BTreeMap<u64, u64>,
}

impl RangeSet {
    fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Insert `[start, end)`, merging overlaps and adjacencies.
    /// Returns the number of bytes newly covered.
    fn insert(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let added = (end - start) - self.bytes_within(start, end);
        let mut s = start;
        let mut e = end;
        // Merge with a predecessor that reaches `start`.
        if let Some((&ps, &pe)) = self.ranges.range(..=s).next_back() {
            if pe >= s {
                if pe >= e {
                    return 0; // fully contained
                }
                s = ps;
                e = e.max(pe);
                self.ranges.remove(&ps);
            }
        }
        // Absorb successors overlapping [s, e).
        let keys: Vec<u64> = self.ranges.range(s..=e).map(|(&k, _)| k).collect();
        for k in keys {
            let ke = self.ranges.remove(&k).expect("key vanished");
            e = e.max(ke);
        }
        self.ranges.insert(s, e);
        added
    }

    /// Remove everything below `cut`. Returns the number of bytes removed.
    fn trim_below(&mut self, cut: u64) -> u64 {
        let keys: Vec<u64> = self.ranges.range(..cut).map(|(&k, _)| k).collect();
        let mut removed = 0;
        for k in keys {
            let e = self.ranges.remove(&k).expect("key vanished");
            removed += e.min(cut) - k;
            if e > cut {
                self.ranges.insert(cut, e);
            }
        }
        removed
    }

    /// Total bytes covered within `[lo, hi)`.
    fn bytes_within(&self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return 0;
        }
        let mut total = 0;
        // Ranges starting before `hi` can overlap; include a predecessor
        // that may straddle `lo`.
        let start_key = self
            .ranges
            .range(..=lo)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(lo);
        for (&s, &e) in self.ranges.range(start_key..hi) {
            let os = s.max(lo);
            let oe = e.min(hi);
            if oe > os {
                total += oe - os;
            }
        }
        total
    }

    /// True when `pos` is inside a covered range.
    fn contains(&self, pos: u64) -> bool {
        self.ranges
            .range(..=pos)
            .next_back()
            .is_some_and(|(_, &e)| e > pos)
    }

    /// The first uncovered position at or after `from`, below `limit`.
    /// Returns `(hole_start, hole_end)` where `hole_end` is capped at the
    /// start of the next covered range or `limit`.
    fn next_gap(&self, from: u64, limit: u64) -> Option<(u64, u64)> {
        let mut pos = from;
        while pos < limit {
            if let Some((&s, &e)) = self.ranges.range(..=pos).next_back() {
                if e > pos {
                    pos = e; // inside a covered range; skip past it
                    continue;
                }
                let _ = s;
            }
            // pos is uncovered: gap runs to the next range start or limit.
            let gap_end = self
                .ranges
                .range(pos..)
                .next()
                .map(|(&s, _)| s.min(limit))
                .unwrap_or(limit);
            if gap_end > pos {
                return Some((pos, gap_end));
            }
            pos = gap_end;
        }
        None
    }

    /// Largest covered offset, if any.
    fn max_end(&self) -> Option<u64> {
        self.ranges.iter().next_back().map(|(_, &e)| e)
    }
}

/// TCP sender for a fixed-size transfer.
#[derive(Debug, Clone)]
pub struct TcpSender {
    cfg: TcpConfig,
    total: u64,
    /// Lowest unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Highest byte ever transmitted (for the retransmit flag).
    max_sent: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// Recovery point: recovery ends when cum-ack reaches this.
    recover: u64,
    /// SACK scoreboard: ranges the receiver holds above the frontier.
    sacked: RangeSet,
    /// Bytes of `sacked` within the current window (incremental counter).
    sacked_in_window: u64,
    /// Ranges retransmitted during the current recovery epoch.
    retxed: RangeSet,
    /// Monotone repair cursor: holes below it were already retransmitted
    /// (or SACKed) this epoch — the RFC 6675 "retransmission hint".
    retx_cursor: u64,
    /// Repair bytes sent this epoch and not yet cumulatively acked:
    /// the congestion window's share consumed by retransmissions.
    retx_outstanding: u64,
    /// True when the current recovery epoch was entered via RTO: every
    /// outstanding byte is then presumed lost and repairable (Linux
    /// CA_Loss), not just holes below the highest SACK.
    loss_recovery: bool,
    // RTO estimation (RFC 6298), in seconds.
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    /// Lowest RTT ever sampled (HyStart baseline), seconds.
    min_rtt: Option<f64>,
    /// Outstanding RTT probe: (byte that must be acked, send time).
    rtt_probe: Option<(u64, SimTime)>,
    // CUBIC state.
    /// Window (bytes) just before the last congestion event.
    w_max: f64,
    /// Start of the current cubic epoch.
    epoch_start: Option<SimTime>,
    /// Time offset K at which the cubic curve regains `w_max`, seconds.
    cubic_k: f64,
    timer_gen: u64,
    completed: bool,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Create a sender for `total` payload bytes.
    ///
    /// # Panics
    /// Panics when `total` is zero (a zero-byte iperf transfer is
    /// meaningless) or the config is invalid.
    pub fn new(cfg: TcpConfig, total: u64) -> Self {
        assert!(total > 0, "transfer must carry at least one byte");
        cfg.validate().expect("invalid TcpConfig");
        let cwnd = (cfg.initial_cwnd_segments as f64 * cfg.mss as f64).min(cfg.max_cwnd);
        TcpSender {
            cfg,
            total,
            snd_una: 0,
            snd_nxt: 0,
            max_sent: 0,
            cwnd,
            ssthresh: cfg.initial_ssthresh,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            sacked: RangeSet::default(),
            sacked_in_window: 0,
            retxed: RangeSet::default(),
            retx_cursor: 0,
            retx_outstanding: 0,
            loss_recovery: false,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.initial_rto.as_secs(),
            min_rtt: None,
            rtt_probe: None,
            w_max: 0.0,
            epoch_start: None,
            cubic_k: 0.0,
            timer_gen: 0,
            completed: false,
            stats: TcpSenderStats::default(),
        }
    }

    /// Congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Slow-start threshold in bytes.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Lowest unacknowledged byte offset.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Bytes in flight (sent, not yet cumulatively acknowledged).
    pub fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> TimeDelta {
        TimeDelta::from_secs(self.rto)
    }

    /// Smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<TimeDelta> {
        self.srtt.map(TimeDelta::from_secs)
    }

    /// True once every payload byte has been cumulatively acknowledged.
    pub fn is_complete(&self) -> bool {
        self.completed
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// True while in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Conservative pipe estimate: sent-but-unacked bytes minus those the
    /// receiver is known to hold (SACKed). Kept `O(1)` via an incremental
    /// counter; retransmission pacing itself is ACK-clocked (see
    /// `Self::repair_holes`), so an exact RFC 6675 pipe is not needed.
    pub fn pipe(&self) -> f64 {
        self.in_flight().saturating_sub(self.sacked_in_window) as f64
    }

    /// Begin the transfer: emit the initial window and arm the timer.
    pub fn on_start(&mut self, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        self.try_send(now, &mut out);
        self.arm_timer(now, &mut out);
        out
    }

    /// Process an acknowledgement (cumulative + optional SACK block).
    pub fn on_ack(&mut self, info: AckInfo, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        if self.completed || info.cum > self.total {
            return out;
        }

        if let Some((s, e)) = info.sack {
            if e > s && e <= self.total {
                self.sacked_in_window += self.sacked.insert(s, e);
            }
        }

        if info.cum > self.snd_una {
            let acked = info.cum - self.snd_una;
            self.snd_una = info.cum;
            // Defensive: an ACK can never legitimately pass snd_nxt (the
            // receiver only acknowledges delivered bytes), but keep
            // in_flight() well-defined regardless.
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            self.max_sent = self.max_sent.max(self.snd_nxt);
            let trimmed = self.sacked.trim_below(self.snd_una);
            self.sacked_in_window = self.sacked_in_window.saturating_sub(trimmed);
            let repaired = self.retxed.trim_below(self.snd_una);
            self.retx_outstanding = self.retx_outstanding.saturating_sub(repaired);
            self.retx_cursor = self.retx_cursor.max(self.snd_una);
            self.dup_acks = 0;
            self.sample_rtt(info.cum, now);

            if self.in_recovery {
                if info.cum >= self.recover {
                    // Recovery complete: deflate to ssthresh, new epoch.
                    self.in_recovery = false;
                    self.loss_recovery = false;
                    self.cwnd = self.ssthresh.min(self.cfg.max_cwnd);
                    self.retxed.clear();
                    self.retx_outstanding = 0;
                    self.epoch_start = None;
                } else {
                    if !self.sacked.contains(self.snd_una) && !self.retxed.contains(self.snd_una) {
                        // Partial ACK: the hole at the new frontier has not
                        // been repaired yet — resend it now (NewReno rule,
                        // also covers recovery with an empty scoreboard).
                        self.retransmit_head(now, &mut out);
                    }
                    if self.cwnd < self.ssthresh {
                        // Post-RTO repair runs in slow start back up to
                        // ssthresh (Linux CA_Loss behaviour); without this
                        // a deeply-collapsed flow crawls at one segment
                        // per RTT for the rest of the transfer.
                        self.cwnd += (acked as f64).min(self.cfg.mss as f64);
                    }
                }
            } else if self.in_slow_start() {
                // Slow start: grow by at most one MSS per ACK.
                self.cwnd += (acked as f64).min(self.cfg.mss as f64);
            } else {
                self.congestion_avoidance(acked, now);
            }
            self.cwnd = self.cwnd.min(self.cfg.max_cwnd);

            if self.snd_una >= self.total {
                self.completed = true;
                self.timer_gen += 1; // cancel timer
                out.push(TcpAction::Complete);
                return out;
            }
            self.arm_timer(now, &mut out);
        } else if info.cum == self.snd_una && self.in_flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            let sack_evidence = self.sacked_in_window >= 3 * self.cfg.mss as u64;
            if !self.in_recovery && (self.dup_acks >= 3 || sack_evidence) {
                self.enter_fast_retransmit(now, &mut out);
            }
        }

        if self.in_recovery {
            self.repair_holes(now, &mut out);
        }
        self.try_send(now, &mut out);
        out
    }

    /// Process a retransmission-timeout fire event. Stale generations are
    /// ignored (the timer was re-armed since this event was scheduled).
    pub fn on_rto(&mut self, gen: u64, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        if gen != self.timer_gen || self.completed || self.in_flight() == 0 {
            return out;
        }
        self.stats.timeouts += 1;
        // RFC 5681 §3.1 / 6298 §5: collapse to one segment and back off the
        // timer. Rather than go-back-N (which resends data the receiver
        // already holds), mark everything outstanding as repairable and
        // let the ACK-clocked SACK walk resend only actual holes — this is
        // the Linux "lost marking" behaviour.
        let flight = self.in_flight() as f64;
        self.ssthresh = self.loss_ssthresh(flight);
        self.register_loss_for_cubic();
        self.cwnd = self.cfg.mss as f64;
        self.dup_acks = 0;
        self.in_recovery = true;
        self.loss_recovery = true;
        self.recover = self.snd_nxt;
        self.retxed.clear();
        self.retx_outstanding = 0;
        self.retx_cursor = self.snd_una;
        self.rto = (self.rto * 2.0).min(self.cfg.max_rto.as_secs());
        self.rtt_probe = None; // Karn: samples across a timeout are invalid
        self.retransmit_head(now, &mut out);
        out
    }

    /// ssthresh after a loss event, per the selected algorithm.
    fn loss_ssthresh(&self, reference_window: f64) -> f64 {
        let floor = 2.0 * self.cfg.mss as f64;
        match self.cfg.algo {
            CongestionAlgo::Reno => (reference_window / 2.0).max(floor),
            CongestionAlgo::Cubic => (reference_window * CUBIC_BETA).max(floor),
        }
    }

    /// Record the pre-loss window for CUBIC's curve and reset the epoch.
    fn register_loss_for_cubic(&mut self) {
        // RFC 9438's optional "fast convergence" (shrinking w_max when a
        // loss arrives below it) is deliberately NOT applied: under the
        // batch-synchronized loss this workload creates, it spirals w_max
        // toward zero and strands late flows at kilobyte windows for tens
        // of seconds — far beyond testbed behaviour. Keeping the largest
        // recently-achieved window as the curve's target matches how the
        // measured flows actually recover.
        self.w_max = self.w_max.max(self.cwnd);
        self.epoch_start = None;
    }

    /// One congestion-avoidance step for `acked` new bytes.
    fn congestion_avoidance(&mut self, acked: u64, now: SimTime) {
        match self.cfg.algo {
            CongestionAlgo::Reno => {
                self.cwnd += self.cfg.mss as f64 * self.cfg.mss as f64 / self.cwnd;
            }
            CongestionAlgo::Cubic => {
                let mss = self.cfg.mss as f64;
                if self.epoch_start.is_none() {
                    self.epoch_start = Some(now);
                    if self.w_max < self.cwnd {
                        self.w_max = self.cwnd;
                    }
                    // K = cbrt(W_max(1-β)/C), with windows in MSS units.
                    let w_max_mss = self.w_max / mss;
                    self.cubic_k = (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                }
                let t = now.since(self.epoch_start.unwrap()).as_secs();
                let rtt = self.srtt.unwrap_or(0.0);
                // Target one RTT ahead, in MSS units.
                let elapsed = t + rtt - self.cubic_k;
                let w_cubic = CUBIC_C * elapsed * elapsed * elapsed + self.w_max / mss;
                // TCP-friendly region (standard TCP estimate).
                let w_est = if rtt > 0.0 {
                    self.w_max / mss * CUBIC_BETA
                        + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (t / rtt)
                } else {
                    0.0
                };
                let target = w_cubic.max(w_est) * mss;
                let acked_mss = acked as f64 / mss;
                if target > self.cwnd {
                    // Spread the climb over a window's worth of ACKs, capped
                    // at CUBIC's maximum probing rate of 1.5 MSS per MSS
                    // acked to keep convex-region growth civilized.
                    let step = (target - self.cwnd) / (self.cwnd / mss) * acked_mss;
                    self.cwnd += step.min(1.5 * mss * acked_mss);
                } else {
                    // At/above the plateau: probe gently.
                    self.cwnd += 0.01 * mss * acked_mss;
                }
            }
        }
    }

    /// Fast retransmit (RFC 5681 §3.2 trigger, RFC 6675-style recovery).
    fn enter_fast_retransmit(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        self.stats.fast_retransmits += 1;
        let reference = (self.in_flight() as f64).min(self.cwnd);
        self.ssthresh = self.loss_ssthresh(reference);
        self.register_loss_for_cubic();
        self.recover = self.snd_nxt;
        self.in_recovery = true;
        self.loss_recovery = false;
        self.retxed.clear();
        self.retx_outstanding = 0;
        self.cwnd = self.ssthresh;
        // Always repair the frontier segment first, then start the cursor
        // walk just past it.
        self.retransmit_range(self.snd_una, now, out);
        self.retx_cursor = self.snd_una + self.cfg.mss as u64;
    }

    /// Window-clocked hole repair at the monotone cursor (RFC 6675 NextSeg
    /// rule 1 with the standard "retransmission hint"; each hole is visited
    /// once per epoch, so a whole recovery costs `O(holes · log n)`).
    ///
    /// In fast recovery only holes below the highest SACKed byte are
    /// presumed lost; after an RTO (`loss_recovery`) everything outstanding
    /// is repairable, which makes tail-loss repair slow-start-paced like
    /// the Linux CA_Loss state rather than one-segment-per-RTT.
    fn repair_holes(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        let limit = if self.loss_recovery {
            self.recover.min(self.snd_nxt)
        } else {
            let Some(high) = self.sacked.max_end() else {
                return;
            };
            high.min(self.recover).min(self.snd_nxt)
        };
        // Bounded per call: the window check is the real limiter, the guard
        // only protects against degenerate configs with a huge cwnd/mss.
        let mut guard = 0u32;
        while (self.retx_outstanding as f64) < self.cwnd && guard < 256 {
            guard += 1;
            let from = self.retx_cursor.max(self.snd_una);
            // Next hole the receiver does not hold...
            let Some((gap_s, gap_e)) = self.sacked.next_gap(from, limit) else {
                return;
            };
            // ...that has not already been repaired this epoch.
            let Some((hs, he)) = self.retxed.next_gap(gap_s, gap_e) else {
                self.retx_cursor = gap_e;
                continue;
            };
            let len = (he - hs).min(self.cfg.mss as u64) as u32;
            self.retransmit_range_len(hs, len, now, out);
            self.retx_cursor = hs + len as u64;
        }
    }

    /// Retransmit the segment at the window frontier (`snd_una`).
    fn retransmit_head(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        let head = self.snd_una;
        self.retransmit_range(head, now, out);
    }

    /// Retransmit one MSS starting at `seq`.
    fn retransmit_range(&mut self, seq: u64, now: SimTime, out: &mut Vec<TcpAction>) {
        let len = (self.total - seq).min(self.cfg.mss as u64) as u32;
        self.retransmit_range_len(seq, len, now, out);
    }

    fn retransmit_range_len(&mut self, seq: u64, len: u32, now: SimTime, out: &mut Vec<TcpAction>) {
        debug_assert!(seq + len as u64 <= self.total);
        self.stats.bytes_retransmitted += len as u64;
        self.retxed.insert(seq, seq + len as u64);
        self.retx_outstanding += len as u64;
        self.rtt_probe = None; // Karn's algorithm
        out.push(TcpAction::Send {
            seq,
            len,
            retransmit: true,
        });
        self.arm_timer(now, out);
    }

    /// Emit as many new segments as the window allows. During recovery the
    /// pipe estimate gates sending; outside it, plain in-flight accounting.
    fn try_send(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        loop {
            if self.snd_nxt >= self.total {
                return;
            }
            // During recovery the pipe estimate (in-flight minus SACKed,
            // plus repairs in flight) gates new data; outside it, plain
            // in-flight accounting.
            let outstanding = if self.in_recovery {
                self.pipe() + self.retx_outstanding as f64
            } else {
                self.in_flight() as f64
            };
            if outstanding >= self.cwnd {
                return;
            }
            let len = (self.total - self.snd_nxt).min(self.cfg.mss as u64) as u32;
            let retransmit = self.snd_nxt < self.max_sent;
            if retransmit {
                self.stats.bytes_retransmitted += len as u64;
            } else {
                self.stats.bytes_sent += len as u64;
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((self.snd_nxt + len as u64, now));
                }
            }
            out.push(TcpAction::Send {
                seq: self.snd_nxt,
                len,
                retransmit,
            });
            self.snd_nxt += len as u64;
            self.max_sent = self.max_sent.max(self.snd_nxt);
        }
    }

    /// Take an RTT sample if the outstanding probe is covered by this ACK.
    fn sample_rtt(&mut self, cum_ack: u64, now: SimTime) {
        if let Some((probe_end, sent_at)) = self.rtt_probe {
            if cum_ack >= probe_end {
                let r = now.since(sent_at).as_secs();
                match self.srtt {
                    None => {
                        self.srtt = Some(r);
                        self.rttvar = r / 2.0;
                    }
                    Some(srtt) => {
                        self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                        self.srtt = Some(0.875 * srtt + 0.125 * r);
                    }
                }
                let srtt = self.srtt.unwrap();
                // Granularity term G = 1 ms.
                self.rto = (srtt + (4.0 * self.rttvar).max(0.001))
                    .clamp(self.cfg.min_rto.as_secs(), self.cfg.max_rto.as_secs());
                self.rtt_probe = None;
                self.hystart_check(r);
                self.min_rtt = Some(self.min_rtt.map_or(r, |m| m.min(r)));
            }
        }
    }

    /// HyStart delay heuristic: leave slow start as soon as the RTT has
    /// risen measurably above its floor — the queue is already building,
    /// so doubling further would only bulldoze it (RFC 9406's delay
    /// trigger, reduced to its essence).
    fn hystart_check(&mut self, sample: f64) {
        if !self.cfg.hystart || !self.in_slow_start() {
            return;
        }
        if let Some(base) = self.min_rtt {
            let eta = (base / 8.0).clamp(0.004, 0.016);
            if sample >= base + eta {
                self.ssthresh = self.cwnd;
                self.stats.hystart_exits += 1;
            }
        }
    }

    /// Bump the timer generation and emit an arm action.
    fn arm_timer(&mut self, now: SimTime, out: &mut Vec<TcpAction>) {
        self.timer_gen += 1;
        out.push(TcpAction::ArmTimer {
            at: now + TimeDelta::from_secs(self.rto),
            gen: self.timer_gen,
        });
    }
}

/// TCP receiver: reassembles the byte stream and produces cumulative ACKs
/// with one SACK block.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Out-of-order byte ranges, keyed by start offset (non-overlapping).
    ooo: BTreeMap<u64, u64>,
    /// Total payload bytes delivered in order.
    delivered: u64,
}

impl TcpReceiver {
    /// Fresh receiver expecting byte 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected byte (current cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Total in-order payload bytes delivered to the application.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of buffered out-of-order ranges (diagnostic).
    pub fn ooo_ranges(&self) -> usize {
        self.ooo.len()
    }

    /// Accept segment `[seq, seq+len)`; returns the acknowledgement to
    /// send: cumulative ACK plus the SACK block the segment landed in.
    /// Duplicate and overlapping data is tolerated (retransmissions).
    pub fn on_data(&mut self, seq: u64, len: u32) -> AckInfo {
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            // Entirely duplicate.
            return AckInfo {
                cum: self.rcv_nxt,
                sack: None,
            };
        }
        if seq <= self.rcv_nxt {
            // Advances the in-order frontier.
            self.advance_to(end);
            // Merge any now-contiguous buffered ranges.
            while let Some((&s, &e)) = self.ooo.first_key_value() {
                if s > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&s);
                if e > self.rcv_nxt {
                    self.advance_to(e);
                }
            }
            AckInfo {
                cum: self.rcv_nxt,
                sack: None,
            }
        } else {
            // Out of order: buffer, merging overlaps.
            let mut start = seq;
            let mut stop = end;
            // Absorb any ranges overlapping [start, stop).
            let overlapping: Vec<u64> = self
                .ooo
                .range(..=stop)
                .filter(|(&s, &e)| e >= start && s <= stop)
                .map(|(&s, _)| s)
                .collect();
            for s in overlapping {
                let e = self.ooo.remove(&s).expect("range key vanished");
                start = start.min(s);
                stop = stop.max(e);
            }
            self.ooo.insert(start, stop);
            AckInfo {
                cum: self.rcv_nxt,
                sack: Some((start, stop)),
            }
        }
    }

    fn advance_to(&mut self, end: u64) {
        debug_assert!(end > self.rcv_nxt);
        self.delivered += end - self.rcv_nxt;
        self.rcv_nxt = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig {
            mss: 1000,
            initial_cwnd_segments: 2,
            initial_ssthresh: f64::INFINITY,
            max_cwnd: 1e9,
            min_rto: TimeDelta::from_millis(200.0),
            max_rto: TimeDelta::from_secs(60.0),
            initial_rto: TimeDelta::from_secs(1.0),
            algo: CongestionAlgo::Reno,
            hystart: false,
        }
    }

    fn cubic_cfg() -> TcpConfig {
        TcpConfig {
            algo: CongestionAlgo::Cubic,
            ..cfg()
        }
    }

    fn ack(cum: u64) -> AckInfo {
        AckInfo { cum, sack: None }
    }

    fn sack(cum: u64, s: u64, e: u64) -> AckInfo {
        AckInfo {
            cum,
            sack: Some((s, e)),
        }
    }

    fn sends(actions: &[TcpAction]) -> Vec<(u64, u32, bool)> {
        actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::Send {
                    seq,
                    len,
                    retransmit,
                } => Some((*seq, *len, *retransmit)),
                _ => None,
            })
            .collect()
    }

    // --- RangeSet ---

    #[test]
    fn rangeset_insert_merges() {
        let mut r = RangeSet::default();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.ranges.len(), 2);
        r.insert(20, 30); // bridges the two
        assert_eq!(r.ranges.len(), 1);
        assert_eq!(r.bytes_within(0, 100), 30);
        assert!(r.contains(15));
        assert!(r.contains(39));
        assert!(!r.contains(40));
    }

    #[test]
    fn rangeset_trim() {
        let mut r = RangeSet::default();
        r.insert(0, 10);
        r.insert(20, 30);
        r.trim_below(25);
        assert_eq!(r.bytes_within(0, 100), 5);
        assert!(!r.contains(5));
        assert!(r.contains(27));
    }

    #[test]
    fn rangeset_next_gap() {
        let mut r = RangeSet::default();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.next_gap(0, 50), Some((0, 10)));
        assert_eq!(r.next_gap(10, 50), Some((20, 30)));
        assert_eq!(r.next_gap(30, 50), Some((40, 50)));
        assert_eq!(r.next_gap(0, 10), Some((0, 10)));
        let full = {
            let mut f = RangeSet::default();
            f.insert(0, 50);
            f
        };
        assert_eq!(full.next_gap(0, 50), None);
    }

    #[test]
    fn rangeset_bytes_within_partial_overlap() {
        let mut r = RangeSet::default();
        r.insert(10, 30);
        assert_eq!(r.bytes_within(0, 15), 5);
        assert_eq!(r.bytes_within(15, 25), 10);
        assert_eq!(r.bytes_within(25, 100), 5);
        assert_eq!(r.bytes_within(40, 50), 0);
    }

    // --- sender basics ---

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_transfer_rejected() {
        let _ = TcpSender::new(cfg(), 0);
    }

    #[test]
    fn initial_window() {
        let mut s = TcpSender::new(cfg(), 10_000);
        let actions = s.on_start(SimTime::ZERO);
        let segs = sends(&actions);
        assert_eq!(segs, vec![(0, 1000, false), (1000, 1000, false)]);
        assert_eq!(s.in_flight(), 2000);
        assert!(actions
            .iter()
            .any(|a| matches!(a, TcpAction::ArmTimer { .. })));
    }

    #[test]
    fn short_transfer_single_segment() {
        let mut s = TcpSender::new(cfg(), 300);
        let actions = s.on_start(SimTime::ZERO);
        assert_eq!(sends(&actions), vec![(0, 300, false)]);
        let done = s.on_ack(ack(300), SimTime::from_millis(10));
        assert!(done.contains(&TcpAction::Complete));
        assert!(s.is_complete());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = TcpSender::new(cfg(), 1_000_000);
        let _ = s.on_start(SimTime::ZERO);
        assert_eq!(s.cwnd(), 2000.0);
        assert!(s.in_slow_start());
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(11));
        assert_eq!(s.cwnd(), 4000.0);
        let _ = s.on_ack(ack(3000), SimTime::from_millis(20));
        let _ = s.on_ack(ack(4000), SimTime::from_millis(20));
        let _ = s.on_ack(ack(5000), SimTime::from_millis(21));
        let _ = s.on_ack(ack(6000), SimTime::from_millis(21));
        assert_eq!(s.cwnd(), 8000.0);
    }

    #[test]
    fn congestion_avoidance_linear_reno() {
        let mut s = TcpSender::new(cfg(), 10_000_000);
        s.ssthresh = 2000.0; // force CA immediately
        let _ = s.on_start(SimTime::ZERO);
        let cwnd0 = s.cwnd();
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        // CA growth per ACK is MSS²/cwnd ≈ 500 B at cwnd 2000.
        assert!((s.cwnd() - (cwnd0 + 1000.0 * 1000.0 / cwnd0)).abs() < 1.0);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        let flight_before = s.in_flight();
        assert!(flight_before > 0);
        let _ = s.on_ack(ack(2000), SimTime::from_millis(20));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(21));
        let a3 = s.on_ack(ack(2000), SimTime::from_millis(22));
        assert!(s.in_recovery());
        assert_eq!(s.stats().fast_retransmits, 1);
        let retx = sends(&a3);
        assert!(retx.iter().any(|&(seq, _, r)| seq == 2000 && r));
        assert!((s.ssthresh() - (flight_before as f64 / 2.0).max(2000.0)).abs() < 1e-9);
    }

    #[test]
    fn sack_evidence_triggers_recovery_early() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        // One dup-ack carrying a fat SACK block (3 MSS): recovery starts
        // without waiting for the third duplicate.
        let a = s.on_ack(sack(2000, 3000, 6000), SimTime::from_millis(20));
        assert!(s.in_recovery());
        let retx = sends(&a);
        assert!(retx.iter().any(|&(seq, _, r)| seq == 2000 && r));
    }

    #[test]
    fn sack_recovery_repairs_multiple_holes_per_rtt() {
        // Window of 10 segments; segments 2, 4, 6 lost. With SACK, all
        // three holes are repaired without waiting a full RTT per hole.
        let mut c = cfg();
        c.initial_cwnd_segments = 10;
        let mut s = TcpSender::new(c, 10_000);
        let _ = s.on_start(SimTime::ZERO);
        assert_eq!(s.in_flight(), 10_000);
        // Receiver got 0-2k, then 3-4k, 5-6k, 7-10k: dup acks w/ SACKs.
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        let mut retx_all = Vec::new();
        for (lo, hi) in [(3000u64, 4000u64), (5000, 6000), (7000, 10000)] {
            let a = s.on_ack(sack(2000, lo, hi), SimTime::from_millis(11));
            retx_all.extend(sends(&a));
        }
        let retx_seqs: Vec<u64> = retx_all
            .iter()
            .filter(|(_, _, r)| *r)
            .map(|(q, _, _)| *q)
            .collect();
        // All three holes (2000, 4000, 6000) retransmitted immediately.
        assert!(retx_seqs.contains(&2000), "{retx_seqs:?}");
        assert!(retx_seqs.contains(&4000), "{retx_seqs:?}");
        assert!(retx_seqs.contains(&6000), "{retx_seqs:?}");
        // No hole resent twice within the epoch.
        let mut sorted = retx_seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), retx_seqs.len());
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        for _ in 0..3 {
            let _ = s.on_ack(ack(2000), SimTime::from_millis(20));
        }
        assert!(s.in_recovery());
        let recover_point = s.recover;
        let _ = s.on_ack(ack(recover_point), SimTime::from_millis(40));
        assert!(!s.in_recovery());
        assert!((s.cwnd() - s.ssthresh()).abs() < 1e-9);
    }

    #[test]
    fn partial_ack_stays_in_recovery() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        for _ in 0..3 {
            let _ = s.on_ack(ack(2000), SimTime::from_millis(20));
        }
        let recover_point = s.recover;
        let actions = s.on_ack(sack(3000, 4000, recover_point), SimTime::from_millis(40));
        assert!(s.in_recovery(), "partial ack must stay in recovery");
        // The hole at the new frontier (3000) is retransmitted by the
        // SACK walk.
        let retx = sends(&actions);
        assert!(retx.iter().any(|&(seq, _, r)| seq == 3000 && r), "{retx:?}");
    }

    #[test]
    fn cubic_loss_decreases_by_beta() {
        let mut s = TcpSender::new(cubic_cfg(), 1_000_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let _ = s.on_ack(ack(2000), SimTime::from_millis(10));
        let flight = s.in_flight() as f64;
        for t in 20..23 {
            let _ = s.on_ack(ack(2000), SimTime::from_millis(t));
        }
        assert!(s.in_recovery());
        assert!((s.ssthresh() - (flight * CUBIC_BETA).max(2000.0)).abs() < 1e-9);
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let start = s.on_start(SimTime::ZERO);
        let gen = start
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmTimer { gen, .. } => Some(*gen),
                _ => None,
            })
            .unwrap();
        let rto_before = s.rto().as_secs();
        let actions = s.on_rto(gen, SimTime::from_secs(1.0));
        assert_eq!(s.cwnd(), 1000.0);
        assert_eq!(s.stats().timeouts, 1);
        assert!((s.rto().as_secs() - rto_before * 2.0).abs() < 1e-9);
        // Go-back-N: the head segment is resent.
        let segs = sends(&actions);
        assert_eq!(segs[0].0, 0);
        assert!(segs[0].2, "resend must be marked retransmit");
    }

    #[test]
    fn stale_rto_ignored() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let start = s.on_start(SimTime::ZERO);
        let gen = start
            .iter()
            .find_map(|a| match a {
                TcpAction::ArmTimer { gen, .. } => Some(*gen),
                _ => None,
            })
            .unwrap();
        // An ACK re-arms the timer, invalidating `gen`.
        let _ = s.on_ack(ack(1000), SimTime::from_millis(10));
        let actions = s.on_rto(gen, SimTime::from_secs(1.0));
        assert!(actions.is_empty());
        assert_eq!(s.stats().timeouts, 0);
    }

    #[test]
    fn rtt_sampling_updates_rto() {
        let mut s = TcpSender::new(cfg(), 100_000);
        let _ = s.on_start(SimTime::ZERO);
        assert!(s.srtt().is_none());
        let _ = s.on_ack(ack(1000), SimTime::from_millis(16));
        let srtt = s.srtt().unwrap();
        assert!((srtt.as_millis() - 16.0).abs() < 0.1);
        // RTO = srtt + max(4*rttvar, 1ms), clamped at min 200 ms.
        assert!((s.rto().as_millis() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn hystart_exits_on_rtt_rise() {
        let mut c = cfg();
        c.hystart = true;
        let mut s = TcpSender::new(c, 10_000_000);
        let _ = s.on_start(SimTime::ZERO);
        // First sample establishes the 16 ms floor.
        let _ = s.on_ack(ack(1000), SimTime::from_millis(16));
        assert!(s.in_slow_start());
        // Feed acks with strongly inflated RTTs.
        let mut a = 2000;
        let mut t = 40.0;
        while s.in_slow_start() && a <= 60_000 {
            let _ = s.on_ack(ack(a), SimTime::from_secs(t / 1000.0));
            a += 1000;
            t += 25.0;
        }
        assert!(!s.in_slow_start(), "hystart should have exited slow start");
        assert!(s.stats().hystart_exits >= 1);
    }

    #[test]
    fn hystart_disabled_keeps_doubling() {
        let mut s = TcpSender::new(cfg(), 10_000_000);
        let _ = s.on_start(SimTime::ZERO);
        let _ = s.on_ack(ack(1000), SimTime::from_millis(16));
        let mut a = 2000;
        let mut t = 40.0;
        for _ in 0..20 {
            let _ = s.on_ack(ack(a), SimTime::from_secs(t / 1000.0));
            a += 1000;
            t += 25.0;
        }
        assert!(s.in_slow_start());
        assert_eq!(s.stats().hystart_exits, 0);
    }

    #[test]
    fn cubic_growth_regains_w_max() {
        let mut s = TcpSender::new(cubic_cfg(), u64::MAX / 4);
        // Pretend a loss happened at w_max = 100 kB.
        s.ssthresh = 70_000.0;
        s.w_max = 100_000.0;
        s.cwnd = 70_000.0;
        s.srtt = Some(0.016);
        // The synthetic ACK stream below implies an effective RTT of
        // ~70 ms (window/ack-rate), so allow the curve its full K ≈ 4.2 s
        // plus TCP-friendly growth: drive 8 s of acks.
        let mut t_ms = 0.0;
        let mut a = 0;
        for _ in 0..8000 {
            a += 1000;
            t_ms += 1.0;
            let _ = s.on_ack(ack(a), SimTime::from_secs(t_ms / 1000.0));
        }
        assert!(
            s.cwnd() > 100_000.0,
            "cubic should regain w_max within 8 s, got {}",
            s.cwnd()
        );
    }

    #[test]
    fn pipe_accounts_for_sacked_and_lost() {
        let mut c = cfg();
        c.initial_cwnd_segments = 10;
        let mut s = TcpSender::new(c, 10_000);
        let _ = s.on_start(SimTime::ZERO);
        assert_eq!(s.pipe(), 10_000.0);
        // SACK 5 segments (5000 B) above a hole at [0, 5000).
        let _ = s.on_ack(sack(0, 5000, 10_000), SimTime::from_millis(10));
        // Recovery entered (SACK evidence ≥ 3 MSS). The hole is counted
        // lost except the parts already retransmitted.
        assert!(s.in_recovery());
        // pipe = 10000 (window) - 5000 (sacked) - lost_unretxed;
        // after the walk retransmitted some of the hole, pipe ≈ cwnd.
        assert!(s.pipe() <= s.cwnd() + 1000.0);
    }

    #[test]
    fn cwnd_capped_at_max() {
        let mut c = cfg();
        c.max_cwnd = 3000.0;
        let mut s = TcpSender::new(c, 1_000_000);
        let _ = s.on_start(SimTime::ZERO);
        for i in 1..100u64 {
            let _ = s.on_ack(ack(i * 1000), SimTime::from_millis(i));
        }
        assert!(s.cwnd() <= 3000.0);
    }

    #[test]
    fn ack_beyond_total_ignored() {
        let mut s = TcpSender::new(cfg(), 5000);
        let _ = s.on_start(SimTime::ZERO);
        let actions = s.on_ack(ack(999_999), SimTime::from_millis(1));
        assert!(actions.is_empty());
        assert!(!s.is_complete());
    }

    // --- receiver ---

    #[test]
    fn receiver_in_order() {
        let mut r = TcpReceiver::new();
        assert_eq!(
            r.on_data(0, 1000),
            AckInfo {
                cum: 1000,
                sack: None
            }
        );
        assert_eq!(
            r.on_data(1000, 1000),
            AckInfo {
                cum: 2000,
                sack: None
            }
        );
        assert_eq!(r.delivered(), 2000);
        assert_eq!(r.ooo_ranges(), 0);
    }

    #[test]
    fn receiver_out_of_order_reports_sack() {
        let mut r = TcpReceiver::new();
        let _ = r.on_data(0, 1000);
        // Hole at [1000, 2000): dup-acks carrying the growing SACK block.
        assert_eq!(
            r.on_data(2000, 1000),
            AckInfo {
                cum: 1000,
                sack: Some((2000, 3000))
            }
        );
        assert_eq!(
            r.on_data(3000, 1000),
            AckInfo {
                cum: 1000,
                sack: Some((2000, 4000))
            }
        );
        assert_eq!(r.ooo_ranges(), 1);
        // Filling the hole releases everything.
        assert_eq!(
            r.on_data(1000, 1000),
            AckInfo {
                cum: 4000,
                sack: None
            }
        );
        assert_eq!(r.delivered(), 4000);
        assert_eq!(r.ooo_ranges(), 0);
    }

    #[test]
    fn receiver_duplicate_data_tolerated() {
        let mut r = TcpReceiver::new();
        let _ = r.on_data(0, 1000);
        assert_eq!(
            r.on_data(0, 1000),
            AckInfo {
                cum: 1000,
                sack: None
            }
        );
        assert_eq!(r.delivered(), 1000);
    }

    #[test]
    fn receiver_overlapping_segments_merge() {
        let mut r = TcpReceiver::new();
        let _ = r.on_data(2000, 1000);
        let a = r.on_data(2500, 1000); // overlaps previous
        assert_eq!(a.sack, Some((2000, 3500)));
        assert_eq!(r.ooo_ranges(), 1);
        let b = r.on_data(5000, 500); // disjoint
        assert_eq!(b.sack, Some((5000, 5500)));
        assert_eq!(r.ooo_ranges(), 2);
        // Fill the first hole: frontier advances through merged range.
        assert_eq!(r.on_data(0, 2000).cum, 3500);
    }

    #[test]
    fn receiver_partial_overlap_with_frontier() {
        let mut r = TcpReceiver::new();
        let _ = r.on_data(0, 1000);
        // Segment straddling the frontier: only new part counts.
        assert_eq!(r.on_data(500, 1000).cum, 1500);
        assert_eq!(r.delivered(), 1500);
    }
}
