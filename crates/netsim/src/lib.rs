//! Packet-level discrete-event network simulator.
//!
//! Stands in for the paper's FABRIC testbed (Table 1: 25 Gbps Mellanox
//! ConnectX-5, 16 ms RTT, MTU 9000): a star of client hosts behind access
//! links feeding one shared bottleneck link into a server, with drop-tail
//! FIFO queues and TCP Reno/NewReno senders. The congestion phenomena the
//! paper measures — slow-start overshoot at batch start, synchronized
//! loss, fast-retransmit stalls and RTO back-off under severe overload —
//! all emerge from these mechanisms, which is what makes the simulator a
//! faithful substitute for measuring worst-case flow-completion times.
//!
//! # Example
//!
//! ```
//! use sss_netsim::{Simulator, SimConfig, FlowSpec, SimTime};
//! use sss_units::{Bytes, Rate, TimeDelta};
//!
//! let cfg = SimConfig::small_test();
//! let mut sim = Simulator::new(cfg, 1); // one client
//! sim.add_flow(FlowSpec::new(0, Bytes::from_mb(1.0), SimTime::ZERO));
//! let report = sim.run();
//! let rec = &report.flows[0];
//! assert!(rec.completed());
//! // The flow cannot beat the theoretical minimum transfer time.
//! let min = Bytes::from_mb(1.0) / report.config.bottleneck.rate;
//! assert!(rec.fct().unwrap().as_secs() >= min.as_secs());
//! ```

mod config;
mod fluid;
mod link;
mod packet;
mod sim;
mod tcp;
mod waterfill;

pub use config::{LinkConfig, Qdisc, SimConfig, TcpConfig};
pub use fluid::{progressive_fill, FluidFlowRecord, FluidReport, FluidSimulator};
pub use link::{Link, LinkStats};
pub use packet::{FlowId, Packet, PacketKind};
pub use sim::{CwndSample, FlowRecord, FlowSpec, SimReport, Simulator};
pub use waterfill::{WaterFiller, WaterFlowId};
// The clock and event queue live in the shared `sss-sim` kernel; the
// re-export keeps `sss_netsim::SimTime` working for existing callers.
pub use sss_sim::SimTime;
pub use tcp::{
    AckInfo, CongestionAlgo, SackBlock, TcpAction, TcpReceiver, TcpSender, TcpSenderStats,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sss_units::Bytes;

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 12, ..Default::default()
        })]

        /// Every byte the application asked to move is delivered in order
        /// to the receiver, for arbitrary flow layouts — conservation.
        #[test]
        fn bytes_conserved_for_random_flows(
            sizes in proptest::collection::vec(10_000u64..3_000_000, 1..6),
            starts_ms in proptest::collection::vec(0u64..500, 1..6),
        ) {
            let n = sizes.len().min(starts_ms.len());
            let cfg = SimConfig::small_test();
            let mut sim = Simulator::new(cfg, n as u32);
            for i in 0..n {
                sim.add_flow(FlowSpec::new(
                    i as u32,
                    Bytes::from_b(sizes[i] as f64),
                    SimTime::from_millis(starts_ms[i]),
                ));
            }
            let report = sim.run();
            prop_assert!(report.all_completed(), "flows starved: {report:?}");

            // Fluid fast path: the work-conserving, zero-overhead fluid
            // makespan is an ideal lower bound on the packet-level one.
            // (Per-flow FCTs are not comparable — TCP unfairness can let
            // one flow beat its max-min fair share.)
            let mut fluid = FluidSimulator::new(cfg, n as u32);
            for i in 0..n {
                fluid.add_flow(FlowSpec::new(
                    i as u32,
                    Bytes::from_b(sizes[i] as f64),
                    SimTime::from_millis(starts_ms[i]),
                ));
            }
            let floor = fluid.run();
            let packet_end = report
                .flows
                .iter()
                .filter_map(|r| r.completion.map(|t| t.as_secs()))
                .fold(0.0, f64::max);
            prop_assert!(
                floor.end_s <= packet_end + 1e-9,
                "fluid makespan {} exceeds packet makespan {packet_end}",
                floor.end_s
            );

            let expected: u64 = sizes[..n].iter().sum();
            prop_assert!(
                (report.delivered.total_bytes() - expected as f64).abs() < 1.0,
                "delivered {} expected {}",
                report.delivered.total_bytes(),
                expected
            );
        }

        /// FCT respects the physical floor (serialization at link rate)
        /// for any flow size.
        #[test]
        fn fct_above_physical_floor(size in 5_000u64..5_000_000) {
            let cfg = SimConfig::small_test();
            let mut sim = Simulator::new(cfg, 1);
            sim.add_flow(FlowSpec::new(0, Bytes::from_b(size as f64), SimTime::ZERO));
            let report = sim.run();
            let fct = report.flows[0].fct().expect("completes").as_secs();
            let floor = (Bytes::from_b(size as f64) / cfg.bottleneck.rate).as_secs();
            prop_assert!(fct >= floor, "fct {fct} under floor {floor}");
        }

        /// Simulations are pure functions of their inputs.
        #[test]
        fn runs_are_deterministic(
            sizes in proptest::collection::vec(10_000u64..500_000, 1..4),
        ) {
            let run = || {
                let cfg = SimConfig::small_test();
                let mut sim = Simulator::new(cfg, sizes.len() as u32);
                for (i, &s) in sizes.iter().enumerate() {
                    sim.add_flow(FlowSpec::new(i as u32, Bytes::from_b(s as f64), SimTime::ZERO));
                }
                sim.run()
            };
            let a = run();
            let b = run();
            prop_assert_eq!(a.flows, b.flows);
            prop_assert_eq!(a.events, b.events);
        }

        /// Drops never exceed enqueue attempts, and transmitted packets
        /// never exceed enqueued ones (counter sanity for any layout).
        #[test]
        fn counter_invariants(
            clients in 1u32..6,
            size in 50_000u64..2_000_000,
        ) {
            let cfg = SimConfig::small_test();
            let mut sim = Simulator::new(cfg, clients);
            for c in 0..clients {
                sim.add_flow(FlowSpec::new(c, Bytes::from_b(size as f64), SimTime::ZERO));
            }
            let report = sim.run();
            let b = report.bottleneck;
            prop_assert!(b.tx_pkts <= b.enqueued_pkts);
            prop_assert!(b.early_drops <= b.dropped_pkts);
            prop_assert!(b.max_queue_bytes <= cfg.bottleneck.buffer.as_b() as u64);
            for a in &report.access {
                prop_assert!(a.tx_pkts <= a.enqueued_pkts);
            }
        }
    }
}
