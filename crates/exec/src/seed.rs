//! Deterministic seed derivation for parallel experiments.

/// Derives independent RNG seeds from a master key.
///
/// Uses the SplitMix64 finalizer, whose output is a bijection of the input
/// with strong avalanche properties — adjacent experiment indices produce
/// statistically-unrelated seeds, and no two indices ever collide for a
/// fixed key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    key: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `key` (the experiment's master seed).
    pub const fn new(key: u64) -> Self {
        SeedSequence { key }
    }

    /// The master key.
    pub const fn key(&self) -> u64 {
        self.key
    }

    /// The seed for work item `index`.
    pub fn seed(&self, index: u64) -> u64 {
        // SplitMix64: z = key + index * golden gamma, then finalize.
        let mut z = self
            .key
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A child sequence for nested parallelism (e.g. per-experiment flows).
    /// Children of distinct indices generate disjoint streams in practice.
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            key: self.seed(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let s = SeedSequence::new(123);
        assert_eq!(s.seed(0), SeedSequence::new(123).seed(0));
        assert_eq!(s.seed(41), SeedSequence::new(123).seed(41));
        assert_eq!(s.key(), 123);
    }

    #[test]
    fn distinct_across_indices() {
        let s = SeedSequence::new(7);
        let seeds: HashSet<u64> = (0..10_000).map(|i| s.seed(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn distinct_across_keys() {
        let a = SeedSequence::new(1).seed(0);
        let b = SeedSequence::new(2).seed(0);
        assert_ne!(a, b);
    }

    #[test]
    fn children_diverge() {
        let root = SeedSequence::new(99);
        let c0 = root.child(0);
        let c1 = root.child(1);
        assert_ne!(c0.seed(0), c1.seed(0));
        // Child streams should not trivially collide with the parent's.
        assert_ne!(c0.seed(0), root.seed(0));
    }

    #[test]
    fn avalanche_flips_many_bits() {
        // Adjacent indices should differ in roughly half of the 64 bits.
        let s = SeedSequence::new(0);
        let mut total = 0;
        for i in 0..100u64 {
            total += (s.seed(i) ^ s.seed(i + 1)).count_ones();
        }
        let avg = total as f64 / 100.0;
        assert!((20.0..44.0).contains(&avg), "avg bit flips {avg}");
    }
}
