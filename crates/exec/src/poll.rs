//! Minimal readiness-driven I/O layer over Linux `epoll`.
//!
//! The container ships no async runtime and the workspace vendors no I/O
//! crates, so the reactor front end in `sss-server` and the connection-ramp
//! client in `sss-loadgen` both sit on this hand-rolled shim: raw `extern
//! "C"` declarations for the handful of syscalls they need (`std` already
//! links libc on every supported target, so no new dependency is involved).
//!
//! Three primitives:
//!
//! - [`Poller`] — an `epoll` instance: register file descriptors with a
//!   `u64` token and level-triggered read/write interest, then block in
//!   [`Poller::wait`] with a bounded timeout.
//! - [`WakePipe`] — the classic self-pipe: worker threads call
//!   [`WakePipe::wake`] to make the event loop's `wait` return even when no
//!   socket is ready; the loop drains the pipe and picks up whatever the
//!   workers queued.
//! - [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` bump so one
//!   process can actually hold the tens of thousands of sockets the C10k
//!   path is about.
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; callers fall back to blocking I/O
//! (the server keeps its threaded front end for exactly this reason).

use std::io;

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (data pending, peer half-closed, or an
    /// error is pending — a subsequent `read` will not block).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The kernel flagged an error or hangup condition.
    pub error: bool,
}

/// Reusable buffer of kernel events filled by [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    buf: Vec<sys::RawEvent>,
    len: usize,
}

impl Events {
    /// A buffer able to receive up to `capacity` events per `wait` call.
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            buf: vec![sys::RawEvent::EMPTY; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterate over the events delivered by the most recent `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(sys::RawEvent::parse)
    }

    /// Number of events delivered by the most recent `wait`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent `wait` timed out with no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A level-triggered `epoll` instance.
///
/// Descriptors are registered with a caller-chosen `u64` token that comes
/// back verbatim in each [`Event`]; the poller never interprets it.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Create a new poller (`epoll_create1(EPOLL_CLOEXEC)` on Linux).
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Register `fd` with the given interest set.
    pub fn add(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.inner
            .ctl(sys::CtlOp::Add, fd, token, readable, writable)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.inner
            .ctl(sys::CtlOp::Mod, fd, token, readable, writable)
    }

    /// Deregister `fd`. Closing a descriptor removes it implicitly, but an
    /// explicit removal keeps the interest list tidy when a connection is
    /// retired before its socket drops.
    pub fn remove(&self, fd: i32) -> io::Result<()> {
        self.inner.ctl(sys::CtlOp::Del, fd, 0, false, false)
    }

    /// Block until at least one registered descriptor is ready or
    /// `timeout_ms` elapses; fills `events` and returns the event count
    /// (0 on timeout). `EINTR` is reported as a timeout rather than an
    /// error so callers' tick loops stay simple.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        let n = self.inner.wait(&mut events.buf, timeout_ms)?;
        events.len = n;
        Ok(n)
    }
}

/// Self-pipe used to wake a [`Poller::wait`] from other threads.
///
/// The read end is registered in the epoll set; any thread may call
/// [`WakePipe::wake`]. Both ends are nonblocking, so a full pipe simply
/// means a wake-up is already pending — `wake` never blocks and never
/// fails in a way the caller needs to handle.
#[derive(Debug)]
pub struct WakePipe {
    inner: sys::WakePipe,
}

impl WakePipe {
    /// Create the pipe (`pipe2(O_NONBLOCK | O_CLOEXEC)` on Linux).
    pub fn new() -> io::Result<Self> {
        Ok(WakePipe {
            inner: sys::WakePipe::new()?,
        })
    }

    /// The read end's descriptor, for registration in a [`Poller`].
    pub fn read_fd(&self) -> i32 {
        self.inner.read_fd()
    }

    /// Make any pending or future `wait` on the registered poller return.
    pub fn wake(&self) {
        self.inner.wake();
    }

    /// Drain every queued wake-up byte; call once per readiness event on
    /// the read end so level-triggered polling does not spin.
    pub fn drain(&self) {
        self.inner.drain();
    }
}

/// Best-effort raise of the process's open-file soft limit toward `want`
/// (clamped to the hard limit). Returns the soft limit now in effect —
/// unchanged when the kernel refuses or the platform has no rlimits.
pub fn raise_nofile_limit(want: u64) -> u64 {
    sys::raise_nofile_limit(want)
}

/// Re-arm an already-listening socket with a deeper accept backlog
/// (Linux allows `listen(2)` again on a bound listener; the kernel caps
/// the value at `net.core.somaxconn`). `std` hard-codes a backlog of
/// 128, which a connection ramp overflows in one burst — overflowed SYNs
/// are silently dropped and retransmit on a 1 s timer, so a deep backlog
/// is the difference between a ramp measured in milliseconds and one
/// measured in retransmits. No-op error on non-Linux targets.
pub fn deepen_listen_backlog(fd: i32, backlog: i32) -> io::Result<()> {
    sys::deepen_listen_backlog(fd, backlog)
}

#[cfg(target_os = "linux")]
mod sys {
    //! Real Linux implementation: raw syscall externs, no libc crate.

    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_void};

    pub(super) const EPOLLIN: u32 = 0x001;
    pub(super) const EPOLLOUT: u32 = 0x004;
    pub(super) const EPOLLERR: u32 = 0x008;
    pub(super) const EPOLLHUP: u32 = 0x010;
    pub(super) const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const O_NONBLOCK: c_int = 0o4000;
    const O_CLOEXEC: c_int = 0o2000000;
    const RLIMIT_NOFILE: c_int = 7;
    const EINTR: i32 = 4;

    /// `struct epoll_event`; packed on x86-64 (the kernel ABI quirk), the
    /// natural C layout elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub(super) struct RawEvent {
        events: u32,
        data: u64,
    }

    impl RawEvent {
        pub(super) const EMPTY: RawEvent = RawEvent { events: 0, data: 0 };

        pub(super) fn parse(&self) -> Event {
            // Copy out of the (possibly packed) struct before touching bits.
            let flags = { self.events };
            let token = { self.data };
            Event {
                token,
                // ERR/HUP are folded into readability (and writability) so
                // the owner performs an I/O call and observes the failure
                // instead of spinning on an event it never services.
                readable: flags & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: flags & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                error: flags & (EPOLLERR | EPOLLHUP) != 0,
            }
        }
    }

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut RawEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    #[derive(Debug)]
    pub(super) struct Poller {
        fd: c_int,
    }

    pub(super) enum CtlOp {
        Add,
        Mod,
        Del,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { fd })
        }

        pub(super) fn ctl(
            &self,
            op: CtlOp,
            fd: i32,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            let mut flags = 0u32;
            if readable {
                flags |= EPOLLIN | EPOLLRDHUP;
            }
            if writable {
                flags |= EPOLLOUT;
            }
            let mut ev = RawEvent {
                events: flags,
                data: token,
            };
            let op = match op {
                CtlOp::Add => 1,
                CtlOp::Del => 2,
                CtlOp::Mod => 3,
            };
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(&self, buf: &mut [RawEvent], timeout_ms: i32) -> io::Result<usize> {
            let n =
                unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(EINTR) {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    #[derive(Debug)]
    pub(super) struct WakePipe {
        read_fd: c_int,
        write_fd: c_int,
    }

    impl WakePipe {
        pub(super) fn new() -> io::Result<Self> {
            let mut fds = [0 as c_int; 2];
            let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub(super) fn read_fd(&self) -> i32 {
            self.read_fd
        }

        pub(super) fn wake(&self) {
            let byte = 1u8;
            // EAGAIN here means the pipe already holds unread wake-ups, so
            // the poller is guaranteed to wake regardless — safe to ignore.
            unsafe { write(self.write_fd, (&byte as *const u8).cast(), 1) };
        }

        pub(super) fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    pub(super) fn deepen_listen_backlog(fd: c_int, backlog: c_int) -> io::Result<()> {
        if unsafe { listen(fd, backlog.max(1)) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub(super) fn raise_nofile_limit(want: u64) -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let new_cur = want.min(lim.max);
        let raised = Rlimit {
            cur: new_cur,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            new_cur
        } else {
            lim.cur
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable stub: constructors fail with `Unsupported`, so callers can
    //! compile everywhere and fall back to blocking I/O at runtime.

    use super::Event;
    use std::io;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll readiness I/O requires Linux",
        )
    }

    #[derive(Debug, Clone, Copy)]
    pub(super) struct RawEvent;

    impl RawEvent {
        pub(super) const EMPTY: RawEvent = RawEvent;

        pub(super) fn parse(&self) -> Event {
            Event {
                token: 0,
                readable: false,
                writable: false,
                error: false,
            }
        }
    }

    #[derive(Debug)]
    pub(super) struct Poller;

    pub(super) enum CtlOp {
        Add,
        Mod,
        Del,
    }

    impl Poller {
        pub(super) fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        pub(super) fn ctl(
            &self,
            _op: CtlOp,
            _fd: i32,
            _token: u64,
            _readable: bool,
            _writable: bool,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn wait(&self, _buf: &mut [RawEvent], _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    #[derive(Debug)]
    pub(super) struct WakePipe;

    impl WakePipe {
        pub(super) fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        pub(super) fn read_fd(&self) -> i32 {
            -1
        }

        pub(super) fn wake(&self) {}

        pub(super) fn drain(&self) {}
    }

    pub(super) fn raise_nofile_limit(_want: u64) -> u64 {
        0
    }

    pub(super) fn deepen_listen_backlog(_fd: i32, _backlog: i32) -> io::Result<()> {
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wait_times_out_with_no_registrations() {
        let poller = Poller::new().unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller.wait(&mut events, 10).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let pipe = WakePipe::new().unwrap();
        poller.add(pipe.read_fd(), 7, true, false).unwrap();

        let mut events = Events::with_capacity(4);
        // No wake yet: times out.
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0);

        pipe.wake();
        pipe.wake(); // coalesces; still a single readiness event
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        pipe.drain();
        // Drained: back to timing out (level-triggered would spin otherwise).
        assert_eq!(poller.wait(&mut events, 10).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_interrupts_wait() {
        let poller = Poller::new().unwrap();
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        poller.add(pipe.read_fd(), 1, true, false).unwrap();

        let waker = pipe.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Events::with_capacity(4);
        // Generous timeout: the wake must arrive long before it.
        let n = poller.wait(&mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        handle.join().unwrap();
    }

    #[test]
    fn socket_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        let fd = server.as_raw_fd();
        poller.add(fd, 42, true, true).unwrap();

        let mut events = Events::with_capacity(4);
        // Empty read buffer, empty write buffer: only writable.
        let n = poller.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && !ev.readable, "{ev:?}");

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        // Now readable too.
        let mut saw_readable = false;
        for _ in 0..100 {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 42 && e.readable) {
                saw_readable = true;
                break;
            }
        }
        assert!(saw_readable);

        let mut server = server;
        let mut buf = [0u8; 16];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        poller.remove(fd).unwrap();
        // Removed: further client writes produce no events.
        client.write_all(b"more").unwrap();
        assert_eq!(poller.wait(&mut events, 20).unwrap(), 0);
    }

    #[test]
    fn peer_close_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9, true, false).unwrap();
        drop(client);

        let mut events = Events::with_capacity(4);
        let mut saw = false;
        for _ in 0..100 {
            poller.wait(&mut events, 100).unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "peer close must surface as readability (EOF)");
    }

    #[test]
    fn nofile_limit_is_at_least_current() {
        let now = raise_nofile_limit(1);
        assert!(now >= 1);
        // Asking for more never lowers it.
        assert!(raise_nofile_limit(now) >= now);
    }
}
