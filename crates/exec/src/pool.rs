//! Shared-queue thread pool and order-preserving parallel maps.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;
use parking_lot::Mutex;

/// A scoped thread pool over a shared work queue.
///
/// Workers pull indices from an atomic counter, so load balances naturally
/// when items have uneven cost (a concurrency-8 simulation takes ~8× a
/// concurrency-1 run). Results land in their input slot, preserving order.
///
/// The pool is created per call — thread spawn cost is negligible next to
/// the simulations being run, and scoped threads let closures borrow from
/// the caller without `'static` bounds.
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// Pool with an explicit worker count (minimum 1).
    pub fn new(workers: usize) -> Self {
        ThreadPool {
            workers: workers.max(1),
        }
    }

    /// Pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool { workers: n }
    }

    /// Number of worker threads this pool will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Order-preserving parallel map over a slice.
    ///
    /// Panics in `f` are propagated to the caller after all workers stop
    /// (no deadlock, no lost panic).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(&mut slots);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                        Ok(r) => {
                            slots.lock()[i] = Some(r);
                        }
                        Err(p) => {
                            *panic_payload.lock() = Some(p);
                            // Drain remaining work so peers exit promptly.
                            next.store(n, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });

        if let Some(p) = panic_payload.into_inner() {
            resume_unwind(p);
        }
        slots
            .into_inner()
            .iter_mut()
            .map(|s| s.take().expect("worker left a result slot empty"))
            .collect()
    }

    /// Parallel for-each without collecting results.
    pub fn for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        let _ = self.map(items, |t| {
            f(t);
        });
    }

    /// Run a set of independent closures, returning their results in order.
    /// Useful when the tasks are heterogeneous rather than a map over data.
    pub fn join_all<R, F>(&self, tasks: Vec<F>) -> Vec<R>
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if tasks.is_empty() {
            return Vec::new();
        }
        // Wrap each FnOnce in an Option so the shared-queue workers can take
        // them through a channel.
        let (tx, rx) = channel::unbounded::<(usize, F)>();
        for (i, t) in tasks.into_iter().enumerate() {
            tx.send((i, t)).expect("queue send");
        }
        drop(tx);

        let n = rx.len();
        let workers = self.workers.min(n).max(1);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(&mut slots);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|scope| {
            let slots = &slots;
            let panic_payload = &panic_payload;
            for _ in 0..workers {
                let rx = rx.clone();
                scope.spawn(move || {
                    for (i, task) in rx.iter() {
                        match catch_unwind(AssertUnwindSafe(task)) {
                            Ok(r) => {
                                slots.lock()[i] = Some(r);
                            }
                            Err(p) => {
                                *panic_payload.lock() = Some(p);
                                return;
                            }
                        }
                    }
                });
            }
        });

        if let Some(p) = panic_payload.into_inner() {
            resume_unwind(p);
        }
        slots
            .into_inner()
            .iter_mut()
            .map(|s| s.take().expect("task left a result slot empty"))
            .collect()
    }
}

/// Order-preserving parallel map with `workers` threads.
///
/// Convenience wrapper over [`ThreadPool::map`].
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ThreadPool::new(workers).map(items, f)
}

/// Parallel for-each with `workers` threads.
pub fn par_for_each<T, F>(workers: usize, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    ThreadPool::new(workers).for_each(items, f)
}

/// Parallel map over fixed-size chunks of a slice, preserving chunk order.
///
/// Use when per-item work is too small to amortize queue traffic; `chunk`
/// is the number of items per task.
pub fn par_chunks_map<T, R, F>(workers: usize, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    ThreadPool::new(workers).map(&chunks, |c| f(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(4, &[] as &[i32], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let out = par_map(8, &xs, |&x| x * 2);
        assert_eq!(out, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_fallback() {
        let xs = vec![1, 2, 3];
        assert_eq!(par_map(1, &xs, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let xs = vec![5];
        assert_eq!(par_map(16, &xs, |&x| x * x), vec![25]);
    }

    #[test]
    fn borrows_environment() {
        let offset = 100;
        let xs = vec![1, 2, 3];
        let out = par_map(2, &xs, |&x| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    #[should_panic(expected = "deliberate test panic")]
    fn panics_propagate() {
        let xs: Vec<u32> = (0..64).collect();
        let _ = par_map(4, &xs, |&x| {
            if x == 13 {
                panic!("deliberate test panic");
            }
            x
        });
    }

    #[test]
    fn for_each_visits_everything() {
        let xs: Vec<u64> = (0..500).collect();
        let sum = AtomicU64::new(0);
        par_for_each(4, &xs, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 500 * 499 / 2);
    }

    #[test]
    fn join_all_ordered() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.join_all(tasks);
        assert_eq!(out, (0..10usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_all_empty() {
        let pool = ThreadPool::new(2);
        let out: Vec<u8> = pool.join_all(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task panic")]
    fn join_all_propagates_panic() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| -> usize { panic!("task panic") }),
            Box::new(|| 3),
        ];
        let _ = pool.join_all(tasks);
    }

    #[test]
    fn chunked_map() {
        let xs: Vec<u32> = (0..10).collect();
        let sums = par_chunks_map(3, &xs, 4, |c| c.iter().sum::<u32>());
        assert_eq!(sums, vec![6, 22, 17]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = par_chunks_map(2, &[1, 2, 3], 0, |c| c.len());
    }

    #[test]
    fn pool_worker_counts() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
        assert_eq!(ThreadPool::new(5).workers(), 5);
        assert!(ThreadPool::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still all complete.
        let xs: Vec<u64> = (0..32).collect();
        let out = par_map(4, &xs, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }
}
