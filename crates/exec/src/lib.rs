//! Deterministic parallel experiment executor.
//!
//! The paper's evaluation is a parameter sweep: 24 experiment
//! configurations (Table 2) × repeat seeds, each an independent simulation.
//! This crate runs such sweeps across threads while keeping results
//! **bitwise reproducible**: work items carry their index, results return
//! in input order, and [`SeedSequence`] derives statistically-independent
//! RNG seeds per item so the assignment of items to threads cannot change
//! any outcome.
//!
//! Built directly on `crossbeam` channels and `std::thread::scope` rather
//! than a work-stealing framework: the workloads are coarse (whole
//! simulations, milliseconds to seconds each), so a simple shared-queue
//! pool is optimal and the scheduling stays easy to reason about.
//!
//! ```
//! use sss_exec::{par_map, SeedSequence};
//!
//! let seeds = SeedSequence::new(42);
//! let configs: Vec<(usize, u64)> = (0..8).map(|i| (i, seeds.seed(i as u64))).collect();
//! let results = par_map(4, &configs, |&(i, seed)| (i, seed % 7));
//! assert_eq!(results.len(), 8);
//! assert_eq!(results[3].0, 3); // order preserved
//! ```

pub mod poll;
mod pool;
mod seed;

pub use pool::{par_chunks_map, par_for_each, par_map, ThreadPool};
pub use seed::SeedSequence;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Parallel map equals sequential map regardless of worker count.
        #[test]
        fn par_map_matches_seq(xs in proptest::collection::vec(-1000i64..1000, 0..64),
                               workers in 1usize..8) {
            let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
            let par = par_map(workers, &xs, f);
            let seq: Vec<i64> = xs.iter().map(f).collect();
            prop_assert_eq!(par, seq);
        }

        /// Seed sequences are deterministic and collision-free over small
        /// index ranges.
        #[test]
        fn seeds_deterministic_and_distinct(key in any::<u64>()) {
            let a = SeedSequence::new(key);
            let b = SeedSequence::new(key);
            let mut seen = std::collections::HashSet::new();
            for i in 0..256u64 {
                prop_assert_eq!(a.seed(i), b.seed(i));
                prop_assert!(seen.insert(a.seed(i)), "collision at index {}", i);
            }
        }

        /// Chunked map covers every element exactly once, in order.
        #[test]
        fn chunks_cover_all(xs in proptest::collection::vec(any::<u32>(), 0..100),
                            workers in 1usize..6, chunk in 1usize..17) {
            let out = par_chunks_map(workers, &xs, chunk, |c| c.to_vec());
            let flat: Vec<u32> = out.into_iter().flatten().collect();
            prop_assert_eq!(flat, xs);
        }
    }
}
