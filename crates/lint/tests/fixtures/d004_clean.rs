// Fixture (context: units). Bit-parity, tolerances, integer equality and
// test-only exact comparison: no findings.
pub fn bit_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn at_origin(i: usize) -> bool {
    i == 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_compare_floats_exactly() {
        assert!(super::close(0.5, 0.5) && 0.5 == 0.5);
    }
}
