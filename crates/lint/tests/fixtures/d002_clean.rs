// Fixture (context: sim). Wall-clock tokens in non-code positions plus a
// justified measurement site: no findings.

/* A block comment /* with nesting */ mentioning Instant::now() and
   SystemTime is commentary, not code. */

pub fn describe() -> &'static str {
    "call Instant::now() or SystemTime::now() at your peril"
}

pub fn raw_doc() -> &'static str {
    r#"raw string: Instant::now() stays data"#
}

pub fn measured_s() -> f64 {
    // sss-lint: allow(D002, fixture models an explicit latency measurement)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
