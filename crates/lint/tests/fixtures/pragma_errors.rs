// Fixture (context: units). Malformed suppressions: two X001 hits (and the
// unpragma'd comparison underneath the bad pragma still fires as D004).
pub fn misuse(x: f64) -> bool {
    // sss-lint: allow(D004)
    x == 0.25
}

pub fn unknown(x: f64) -> bool {
    // sss-lint: allow(Z999, no such rule)
    x == 0.75
}
