// Fixture (context: sim). Every forbidden token appears only in non-code
// positions — strings, raw strings at several hash depths, nested block
// comments, char literals — so nothing may fire.

/* Outer /* nested /* twice */ */ comment: Instant::now(), SystemTime,
   thread_rng(), from_entropy(), OsRng, x == 0.0, y != 1.5,
   table.iter(), for k in keys {}, .unwrap(), .expect("boom"),
   sss_server::PORT — none of this is code. */

pub fn strings() -> Vec<String> {
    vec![
        "Instant::now() and SystemTime::now()".to_string(),
        "thread_rng() and from_entropy() and OsRng".to_string(),
        "x == 0.0 and y != 1.5".to_string(),
        ".unwrap() and .expect(\"boom\")".to_string(),
        r#"raw: HashMap::new() then cache.iter() then sss_server::run()"#.to_string(),
        r##"deeper raw keeps "#-terminators inert: Instant::now()"##.to_string(),
        b"byte string: SystemTime::now()".escape_ascii().to_string(),
    ]
}

pub fn lifetimes_and_chars<'a>(x: &'a str) -> (char, &'a str) {
    // A char literal is not a lifetime and not an operator.
    ('=', x)
}
