// Fixture (context: stats). Ambient entropy outside an entry point: two hits.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.random_range(0.0..1.0)
}

pub fn fresh_rng() -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::from_entropy()
}
