// Fixture (context: units). Exact float comparisons: two hits.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn differs(x: f64) -> bool {
    x != 1.5
}
