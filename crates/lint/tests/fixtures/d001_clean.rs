// Fixture (context: core). Order-safe hash usage: no findings.
use std::collections::{BTreeMap, HashMap};

pub fn render(table: BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in table.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn lookup(cache: HashMap<String, f64>, key: &str) -> Option<f64> {
    // Point lookups never observe iteration order.
    cache.get(key).copied()
}

pub fn doc() -> &'static str {
    "calling table.iter() on a HashMap would be flagged, but this is a string"
}
