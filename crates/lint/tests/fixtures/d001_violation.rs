// Fixture (context: core). Hash-order iteration feeding output: two hits.
use std::collections::{HashMap, HashSet};

pub fn render(table: HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in table.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn count_ids(seen: HashSet<u32>) -> Vec<u32> {
    let mut ids = Vec::new();
    for id in &seen {
        ids.push(*id);
    }
    ids
}
