// Fixture (context: stats). Seeded draws, string mentions, and test-only
// ambient entropy: no findings.
pub fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

pub fn doc() -> &'static str {
    "thread_rng() and from_entropy() and OsRng are fine inside a string"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_ambient_entropy() {
        let _ = rand::thread_rng();
    }
}
