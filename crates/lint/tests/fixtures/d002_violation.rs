// Fixture (context: sim). Wall-clock reads in a simulation crate: two hits.
use std::time::SystemTime;

pub fn stamp_s() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
