// Fixture (context: core). Upward and lateral imports: two hits.
use sss_server::ServeOptions;

pub fn peek() -> u32 {
    sss_netsim::PROBE_COUNT
}
