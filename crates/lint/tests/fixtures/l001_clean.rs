// Fixture (context: server). Downward imports only: no findings.
use sss_core::ModelParams;
use sss_report::Table;

pub fn shape(params: &ModelParams) -> (Table, &'static str) {
    let _ = params;
    (Table::default(), "sss_server may depend on anything below it")
}
