// Fixture (context: server). Graceful error handling, string mentions and
// test-only unwraps: no findings.
pub fn handle(body: &str) -> Result<String, String> {
    let parsed: u32 = body
        .trim()
        .parse()
        .map_err(|e| format!("bad body: {e}"))?;
    Ok(format!("parsed {parsed} without .unwrap() or .expect(\"…\")"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::handle("7").unwrap();
    }
}
