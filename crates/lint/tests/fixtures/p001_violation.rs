// Fixture (context: server). Panics on a request-handling path: two hits.
pub fn handle(body: &str) -> String {
    let parsed: u32 = body.trim().parse().unwrap();
    let mode = std::env::var("SSS_MODE").expect("SSS_MODE is set");
    format!("{parsed}:{mode}")
}
