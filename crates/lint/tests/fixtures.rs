//! Fixture-driven end-to-end coverage: every rule has at least one
//! positive and one negative snippet under `tests/fixtures/`, each linted
//! through the library API and through the compiled binary; plus the
//! baseline-minimality contract — the committed `sss-lint.baseline` must
//! grandfather exactly the findings a baseline-free workspace run emits.

use std::path::{Path, PathBuf};
use std::process::Command;

use sss_lint::rules::{lint_source, FileContext};
use sss_lint::Finding;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn lint_fixture(name: &str, crate_ctx: &str) -> Vec<Finding> {
    let path = fixture_path(name);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    lint_source(name, &source, &FileContext::for_crate(crate_ctx))
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

struct BinaryRun {
    code: i32,
    stdout: String,
    stderr: String,
}

fn run_binary(args: &[&str]) -> BinaryRun {
    let out = Command::new(env!("CARGO_BIN_EXE_sss-lint"))
        .args(args)
        .output()
        .expect("spawning sss-lint");
    BinaryRun {
        code: out.status.code().unwrap_or(-1),
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

/// `(rule, "file:line")` anchors from `file:line: RULE: message` text
/// output, skipping the trailing summary line.
fn text_anchors(stdout: &str) -> Vec<(String, String)> {
    let mut anchors = Vec::new();
    for line in stdout.lines() {
        if line.starts_with("sss-lint:") {
            continue;
        }
        // rsplit: paths never contain ": " but messages may contain ':'.
        let mut parts = line.splitn(3, ": ");
        let (Some(anchor), Some(rule), Some(_msg)) = (parts.next(), parts.next(), parts.next())
        else {
            panic!("unparseable diagnostic line {line:?}");
        };
        anchors.push((rule.to_string(), anchor.to_string()));
    }
    anchors
}

// ---- library API: one positive and one negative fixture per rule -------

#[test]
fn d001_fires_on_hash_iteration_and_only_there() {
    let findings = lint_fixture("d001_violation.rs", "core");
    assert_eq!(rules_of(&findings), ["D001", "D001"], "{findings:?}");
    assert_eq!(findings[0].line, 6, "`.iter()` call");
    assert_eq!(findings[1].line, 14, "for-loop");
    assert!(lint_fixture("d001_clean.rs", "core").is_empty());
    // Scope: D001 only covers output-producing crates.
    assert!(lint_fixture("d001_violation.rs", "sim").is_empty());
}

#[test]
fn d002_fires_on_wall_clock_everywhere() {
    let findings = lint_fixture("d002_violation.rs", "sim");
    assert_eq!(rules_of(&findings), ["D002", "D002"], "{findings:?}");
    assert!(lint_fixture("d002_clean.rs", "sim").is_empty());
    // D002 is universal: the same source violates in any crate context.
    assert_eq!(lint_fixture("d002_violation.rs", "bench").len(), 2);
}

#[test]
fn d003_fires_on_ambient_entropy_outside_entry_points() {
    let findings = lint_fixture("d003_violation.rs", "stats");
    assert_eq!(rules_of(&findings), ["D003", "D003"], "{findings:?}");
    assert!(lint_fixture("d003_clean.rs", "stats").is_empty());
    // Entry points (bench, the CLI crate) may use ambient entropy.
    assert!(lint_fixture("d003_violation.rs", "bench").is_empty());
    assert!(lint_fixture("d003_violation.rs", "stream-score").is_empty());
}

#[test]
fn d004_fires_on_exact_float_comparison() {
    let findings = lint_fixture("d004_violation.rs", "units");
    assert_eq!(rules_of(&findings), ["D004", "D004"], "{findings:?}");
    assert!(lint_fixture("d004_clean.rs", "units").is_empty());
}

#[test]
fn p001_fires_on_request_path_panics_in_scope() {
    let findings = lint_fixture("p001_violation.rs", "server");
    assert_eq!(rules_of(&findings), ["P001", "P001"], "{findings:?}");
    assert_eq!(
        rules_of(&lint_fixture("p001_violation.rs", "loadgen")),
        ["P001", "P001"]
    );
    assert!(lint_fixture("p001_clean.rs", "server").is_empty());
    // Panicking is allowed below the service layer.
    assert!(lint_fixture("p001_violation.rs", "core").is_empty());
}

#[test]
fn l001_fires_on_upward_and_lateral_references() {
    let findings = lint_fixture("l001_violation.rs", "core");
    assert_eq!(rules_of(&findings), ["L001", "L001"], "{findings:?}");
    assert!(lint_fixture("l001_clean.rs", "server").is_empty());
    // From the top of the stack the same references point downward.
    assert!(lint_fixture("l001_violation.rs", "stream-score").is_empty());
}

#[test]
fn tokens_inside_strings_and_comments_never_fire() {
    let findings = lint_fixture("tricky_tokens.rs", "sim");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn malformed_pragmas_are_x001_and_do_not_suppress() {
    let findings = lint_fixture("pragma_errors.rs", "units");
    assert_eq!(
        rules_of(&findings),
        ["X001", "D004", "X001", "D004"],
        "{findings:?}"
    );
}

// ---- binary: formats, exit codes, --context ----------------------------

#[test]
fn binary_reports_fixture_violations_in_text() {
    let path = fixture_path("p001_violation.rs");
    let run = run_binary(&["--context", "server", path.to_str().unwrap()]);
    assert_eq!(run.code, 1, "stderr: {}", run.stderr);
    let anchors = text_anchors(&run.stdout);
    assert_eq!(anchors.len(), 2, "{}", run.stdout);
    for (rule, anchor) in &anchors {
        assert_eq!(rule, "P001");
        assert!(anchor.contains("p001_violation.rs:"), "{anchor}");
    }
    assert!(run.stdout.contains("2 finding(s)"), "{}", run.stdout);
}

#[test]
fn binary_reports_fixture_violations_in_json() {
    let path = fixture_path("d004_violation.rs");
    let run = run_binary(&[
        "--context",
        "units",
        "--format",
        "json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(run.code, 1);
    assert!(run.stdout.contains("\"rule\":\"D004\""), "{}", run.stdout);
    assert!(run.stdout.contains("\"line\":3"), "{}", run.stdout);
    assert!(run.stdout.contains("\"line\":7"), "{}", run.stdout);
    assert!(run.stdout.contains("\"total\":2"), "{}", run.stdout);
}

#[test]
fn binary_exits_zero_on_clean_fixture() {
    let path = fixture_path("tricky_tokens.rs");
    let run = run_binary(&["--context", "sim", path.to_str().unwrap()]);
    assert_eq!(run.code, 0, "{} {}", run.stdout, run.stderr);
    assert!(run.stdout.contains("clean"), "{}", run.stdout);
}

#[test]
fn binary_rejects_bad_usage_with_exit_two() {
    let run = run_binary(&[]);
    assert_eq!(run.code, 2);
    assert!(run.stderr.contains("nothing to lint"), "{}", run.stderr);
    let run = run_binary(&["--format", "yaml", "x.rs"]);
    assert_eq!(run.code, 2);
}

#[test]
fn binary_lists_every_rule() {
    let run = run_binary(&["--list-rules"]);
    assert_eq!(run.code, 0);
    for code in ["D001", "D002", "D003", "D004", "P001", "L001"] {
        assert!(run.stdout.contains(code), "missing {code}: {}", run.stdout);
    }
}

// ---- the workspace itself ----------------------------------------------

#[test]
fn workspace_is_clean_under_the_committed_baseline() {
    let root = workspace_root();
    let run = run_binary(&["--workspace", "--root", root.to_str().unwrap()]);
    assert_eq!(run.code, 0, "{} {}", run.stdout, run.stderr);
}

#[test]
fn baseline_is_minimal() {
    // Without the baseline the workspace must produce *exactly* the
    // grandfathered set: no stale entries hiding fixed sites, no fresh
    // violations hiding behind the summary count.
    let root = workspace_root();
    let run = run_binary(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--no-baseline",
    ]);
    let mut found = text_anchors(&run.stdout);
    found.sort();

    let text = std::fs::read_to_string(root.join("sss-lint.baseline"))
        .expect("committed sss-lint.baseline");
    let mut grandfathered: Vec<(String, String)> = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut cols = l.split('\t');
            let rule = cols.next().expect("rule column").to_string();
            let anchor = cols.next().expect("anchor column").to_string();
            (rule, anchor)
        })
        .collect();
    grandfathered.sort();

    assert_eq!(
        found, grandfathered,
        "baseline out of sync: regenerate with --write-baseline and review"
    );
    let expected_exit = if grandfathered.is_empty() { 0 } else { 1 };
    assert_eq!(run.code, expected_exit);
}
