//! Inline `// sss-lint: allow(RULE, reason)` pragmas.
//!
//! A pragma suppresses one rule on one source line. It is written in any
//! comment (line or block); the reason is **mandatory** — an allow without
//! a reason, or naming an unknown rule, is itself reported under the
//! meta-rule `X001` so suppressions stay auditable.
//!
//! Binding: a pragma in a trailing comment applies to the line it sits
//! on; a pragma on a line of its own applies to the next line that holds
//! code (intervening comment-only and blank lines are skipped, so pragma
//! stacks work).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Token, TokenKind};
use crate::rules::rule_exists;
use crate::Finding;

/// One parsed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule code being suppressed (e.g. `D002`).
    pub rule: String,
    /// The operator-supplied justification.
    pub reason: String,
    /// The source line the suppression applies to.
    pub target_line: u32,
}

/// All pragma information extracted from one file's token stream.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// `line -> rules allowed on that line`.
    allowed: BTreeMap<u32, BTreeSet<String>>,
    /// Malformed pragmas, reported as `X001` findings.
    pub errors: Vec<(u32, String)>,
}

impl Pragmas {
    /// Is `rule` suppressed on `line`?
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allowed
            .get(&line)
            .map(|rules| rules.contains(rule))
            .unwrap_or(false)
    }

    /// Convert accumulated pragma errors into `X001` findings for `file`.
    pub fn error_findings(&self, file: &str) -> Vec<Finding> {
        self.errors
            .iter()
            .map(|(line, message)| Finding {
                rule: "X001".to_string(),
                file: file.to_string(),
                line: *line,
                message: message.clone(),
            })
            .collect()
    }
}

/// The marker every pragma starts with inside a comment.
const MARKER: &str = "sss-lint:";

/// Extract pragmas from a token stream (comments carry their text).
pub fn collect(tokens: &[Token]) -> Pragmas {
    // Lines that hold at least one non-comment token, for binding
    // own-line pragmas to the next code line.
    let code_lines: BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .map(|t| t.line)
        .collect();

    let mut pragmas = Pragmas::default();
    for token in tokens {
        let TokenKind::Comment(text) = &token.kind else {
            continue;
        };
        // Only a comment that *starts* with the marker (after `//`, the
        // doc sigils `/`/`!`, or block-comment `/*`) is a pragma: prose
        // that merely mentions the syntax is left alone.
        let head = text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(rest) = head.strip_prefix(MARKER) else {
            continue;
        };
        let body = rest.trim();
        match parse_allow(body) {
            Ok((rule, _reason)) => {
                let target = if code_lines.contains(&token.line) {
                    // Trailing comment: applies to its own line.
                    token.line
                } else {
                    // Own-line comment: applies to the next code line.
                    match code_lines.range(token.line + 1..).next() {
                        Some(&line) => line,
                        None => {
                            pragmas.errors.push((
                                token.line,
                                "pragma has no following code line to apply to".to_string(),
                            ));
                            continue;
                        }
                    }
                };
                pragmas.allowed.entry(target).or_default().insert(rule);
            }
            Err(message) => pragmas.errors.push((token.line, message)),
        }
    }
    pragmas
}

/// Parse `allow(RULE, reason…)`; the reason must be non-empty.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("malformed pragma {body:?}: expected `allow(RULE, reason)`"))?;
    let rest = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("malformed pragma {body:?}: missing closing `)`"))?;
    let (rule, reason) = rest.split_once(',').ok_or_else(|| {
        format!("pragma allow({rest}) is missing its mandatory reason: `allow(RULE, reason)`")
    })?;
    let rule = rule.trim();
    let reason = reason.trim();
    if !rule_exists(rule) {
        return Err(format!("pragma names unknown rule {rule:?}"));
    }
    if reason.is_empty() {
        return Err(format!("pragma allow({rule}) has an empty reason"));
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_pragma_binds_to_its_line() {
        let toks = lex("let t = now(); // sss-lint: allow(D002, latency measurement)\n");
        let pragmas = collect(&toks);
        assert!(pragmas.allows("D002", 1));
        assert!(!pragmas.allows("D002", 2));
        assert!(pragmas.errors.is_empty());
    }

    #[test]
    fn own_line_pragma_binds_to_next_code_line() {
        let src = "// sss-lint: allow(D004, exact-zero guard)\n// another comment\n\nx == 0.0;\n";
        let pragmas = collect(&lex(src));
        assert!(pragmas.allows("D004", 4));
    }

    #[test]
    fn stacked_pragmas_accumulate() {
        let src = "// sss-lint: allow(D002, a)\n// sss-lint: allow(P001, b)\nwork();\n";
        let pragmas = collect(&lex(src));
        assert!(pragmas.allows("D002", 3));
        assert!(pragmas.allows("P001", 3));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let pragmas = collect(&lex("x(); // sss-lint: allow(D002)\n"));
        assert!(!pragmas.allows("D002", 1));
        assert_eq!(pragmas.errors.len(), 1);
        assert!(pragmas.errors[0].1.contains("reason"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let pragmas = collect(&lex("x(); // sss-lint: allow(Z999, because)\n"));
        assert_eq!(pragmas.errors.len(), 1);
        assert!(pragmas.errors[0].1.contains("unknown rule"));
    }
}
