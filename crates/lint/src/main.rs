//! The `sss-lint` command-line interface.
//!
//! ```text
//! sss-lint --workspace [--root DIR] [--format text|json]
//!          [--baseline FILE | --no-baseline] [--write-baseline]
//! sss-lint [--context CRATE] [--format text|json] FILE...
//! sss-lint --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` non-baselined findings, `2` usage or I/O
//! error.
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use sss_lint::rules::{lint_source, FileContext, RULES};
use sss_lint::{baseline, lint_workspace, render_json, render_text, Finding};

/// Default baseline location, relative to the workspace root.
const DEFAULT_BASELINE: &str = "sss-lint.baseline";

struct Options {
    workspace: bool,
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    context: Option<String>,
    list_rules: bool,
    files: Vec<PathBuf>,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        context: None,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format {other:?} (use text or json)")),
                }
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--context" => opts.context = Some(value("--context")?),
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: sss-lint --workspace [--root DIR] [--format text|json] \
                            [--baseline FILE | --no-baseline] [--write-baseline] | \
                            sss-lint [--context CRATE] FILE... | sss-lint --list-rules"
                        .to_string(),
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => opts.files.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && !opts.list_rules && opts.files.is_empty() {
        return Err("nothing to lint: pass --workspace, file paths, or --list-rules".to_string());
    }
    if opts.workspace && !opts.files.is_empty() {
        return Err("--workspace and explicit file paths are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    if opts.list_rules {
        for rule in RULES {
            println!("{}  {}", rule.code, rule.summary);
        }
        return Ok(true);
    }

    let mut findings: Vec<Finding>;
    let mut grandfathered = 0usize;

    if opts.workspace {
        findings = lint_workspace(&opts.root)?;
        // Baseline handling (workspace mode only — explicit files are
        // fixture/spot checks and always see every finding).
        let baseline_path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| opts.root.join(DEFAULT_BASELINE));
        let baseline_rel = rel_to_root(&baseline_path, &opts.root);
        if opts.write_baseline {
            std::fs::write(&baseline_path, baseline::render(&findings))
                .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
            eprintln!(
                "sss-lint: wrote {} entries to {}",
                findings.len(),
                baseline_path.display()
            );
            return Ok(true);
        }
        if !opts.no_baseline && baseline_path.is_file() {
            let text = std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
            let entries = baseline::parse(&text)?;
            let (fresh, old) = baseline::apply(findings, &entries, &baseline_rel);
            findings = fresh;
            grandfathered = old.len();
            findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        }
    } else {
        findings = Vec::new();
        for path in &opts.files {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let rel = path.to_string_lossy().replace('\\', "/");
            let ctx = match &opts.context {
                Some(name) => FileContext::for_crate(name),
                None => FileContext::for_path(&rel),
            };
            findings.extend(lint_source(&rel, &text, &ctx));
        }
        findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    match opts.format {
        Format::Text => print!("{}", render_text(&findings, grandfathered)),
        Format::Json => print!("{}", render_json(&findings, grandfathered)),
    }
    Ok(findings.is_empty())
}

fn rel_to_root(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("sss-lint: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("sss-lint: {message}");
            ExitCode::from(2)
        }
    }
}
