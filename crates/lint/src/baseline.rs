//! The checked-in baseline of grandfathered findings.
//!
//! Format: one entry per line, `RULE<TAB>file:line<TAB>note`, `#` comments
//! and blank lines ignored. The note is free text for the reader; matching
//! uses only `RULE file:line`. A baseline entry that no longer matches any
//! finding is reported as `X002` (stale baseline entry), which keeps the
//! committed baseline exactly minimal: the file never outlives the debt it
//! documents.

use std::collections::BTreeSet;

use crate::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    /// Rule code of the grandfathered finding.
    pub rule: String,
    /// `file:line` anchor, workspace-relative with forward slashes.
    pub anchor: String,
    /// Free-text note carried in the file.
    pub note: String,
    /// 1-based line in the baseline file (for X002 diagnostics).
    pub file_line: u32,
}

impl Entry {
    fn key(&self) -> String {
        format!("{} {}", self.rule, self.anchor)
    }
}

/// Parse baseline text. Malformed lines are returned as error strings
/// rather than silently skipped — a typo must not un-grandfather a site.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (rule, anchor) = match (parts.next(), parts.next()) {
            (Some(rule), Some(anchor)) if !rule.is_empty() && anchor.contains(':') => {
                (rule, anchor)
            }
            _ => {
                return Err(format!(
                    "baseline line {}: expected `RULE<TAB>file:line[<TAB>note]`, got {line:?}",
                    idx + 1
                ))
            }
        };
        entries.push(Entry {
            rule: rule.to_string(),
            anchor: anchor.to_string(),
            note: parts.next().unwrap_or("").to_string(),
            file_line: (idx + 1) as u32,
        });
    }
    Ok(entries)
}

/// Split findings into (non-baselined, baselined) and append an `X002`
/// finding for every stale baseline entry.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[Entry],
    baseline_path: &str,
) -> (Vec<Finding>, Vec<Finding>) {
    let keys: BTreeSet<String> = entries.iter().map(Entry::key).collect();
    let mut fresh = Vec::new();
    let mut matched: BTreeSet<String> = BTreeSet::new();
    let mut grandfathered = Vec::new();
    for finding in findings {
        let key = format!("{} {}:{}", finding.rule, finding.file, finding.line);
        if keys.contains(&key) {
            matched.insert(key);
            grandfathered.push(finding);
        } else {
            fresh.push(finding);
        }
    }
    for entry in entries {
        if !matched.contains(&entry.key()) {
            fresh.push(Finding {
                rule: "X002".to_string(),
                file: baseline_path.to_string(),
                line: entry.file_line,
                message: format!(
                    "stale baseline entry `{} {}`: no such finding anymore — delete the line",
                    entry.rule, entry.anchor
                ),
            });
        }
    }
    (fresh, grandfathered)
}

/// Render findings in baseline format (for `--write-baseline`).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# sss-lint baseline: grandfathered findings, one per line.\n\
         # Format: RULE<TAB>file:line<TAB>note. Fix the site, then delete its line;\n\
         # stale entries fail the lint (X002) so this file stays minimal.\n",
    );
    for f in findings {
        out.push_str(&format!(
            "{}\t{}:{}\t{}\n",
            f.rule, f.file, f.line, f.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn round_trip_and_match() {
        let text = "# comment\nL001\tcrates/a/src/x.rs:10\tgrandfathered\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        let (fresh, old) = apply(
            vec![
                finding("L001", "crates/a/src/x.rs", 10),
                finding("D004", "y.rs", 2),
            ],
            &entries,
            "sss-lint.baseline",
        );
        assert_eq!(old.len(), 1);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "D004");
    }

    #[test]
    fn stale_entries_surface_as_x002() {
        let entries = parse("L001\tgone.rs:1\told\n").unwrap();
        let (fresh, old) = apply(Vec::new(), &entries, "sss-lint.baseline");
        assert!(old.is_empty());
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "X002");
        assert_eq!(fresh[0].line, 1);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("not a baseline line\n").is_err());
    }
}
