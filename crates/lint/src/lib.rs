//! `sss-lint`: a workspace-native determinism & robustness analyzer.
//!
//! Every load-bearing guarantee in this repository — bit-identical
//! sequential/parallel suite output, seeded position-derived Monte-Carlo
//! jitter, FIFO-tie-break event ordering in `sss-sim`, byte-identical
//! cached server responses — is dynamic: CI byte-compare jobs catch a
//! regression only after it ships. This crate rejects the whole bug class
//! at the source level instead. It is a self-contained static analyzer
//! (pure std, hand-rolled lexer — no `syn`) that walks all non-vendor
//! workspace sources and enforces six invariants; see [`rules::RULES`].
//!
//! Suppression is explicit and auditable: an inline
//! `// sss-lint: allow(RULE, reason)` pragma (reason mandatory) clears one
//! line, and the checked-in `sss-lint.baseline` file grandfathers legacy
//! sites — stale entries fail the lint, so the baseline stays minimal.
//!
//! # Example
//!
//! ```
//! use sss_lint::rules::{lint_source, FileContext};
//!
//! // A wall-clock read inside a simulation crate is a determinism bug…
//! let findings = lint_source(
//!     "crates/sim/src/demo.rs",
//!     "fn stamp() -> std::time::Instant { Instant::now() }",
//!     &FileContext::for_crate("sim"),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "D002");
//!
//! // …but the same tokens inside a string literal are data, not code.
//! let clean = lint_source(
//!     "crates/sim/src/demo.rs",
//!     r#"const DOC: &str = "never call Instant::now() here";"#,
//!     &FileContext::for_crate("sim"),
//! );
//! assert!(clean.is_empty());
//! ```
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, FileContext};

use std::path::Path;

/// One diagnostic: a rule violated at a `file:line` anchor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule code (`D001`…`D004`, `P001`, `L001`) or meta code (`X001` bad
    /// pragma, `X002` stale baseline entry).
    pub rule: String,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
}

/// Lint every non-vendor source file and crate manifest under `root`.
/// Findings come back sorted by `(file, line, rule)`.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for file in walk::workspace_files(root)? {
        let text = std::fs::read_to_string(&file.path)
            .map_err(|e| format!("reading {}: {e}", file.path.display()))?;
        let ctx = FileContext::for_path(&file.rel);
        if file.manifest {
            findings.extend(rules::lint_manifest(&file.rel, &text, &ctx));
        } else {
            findings.extend(lint_source(&file.rel, &text, &ctx));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(findings)
}

/// Render findings as `file:line: RULE: message` lines plus a summary.
pub fn render_text(findings: &[Finding], grandfathered: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: {}: {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "sss-lint: clean ({grandfathered} grandfathered in baseline)\n"
        ));
    } else {
        out.push_str(&format!(
            "sss-lint: {} finding(s), {} grandfathered in baseline\n",
            findings.len(),
            grandfathered
        ));
    }
    out
}

/// Render findings as a stable JSON document:
/// `{"findings":[{"rule","file","line","message"}…],"total":N,"grandfathered":M}`.
pub fn render_json(findings: &[Finding], grandfathered: usize) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"total\":{},\"grandfathered\":{}}}",
        findings.len(),
        grandfathered
    ));
    out.push('\n');
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn text_and_json_render_anchor() {
        let f = vec![Finding {
            rule: "D002".into(),
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            message: "wall clock".into(),
        }];
        let text = render_text(&f, 2);
        assert!(text.contains("crates/sim/src/x.rs:7: D002: wall clock"));
        assert!(text.contains("1 finding(s), 2 grandfathered"));
        let json = render_json(&f, 2);
        assert!(json.contains("\"file\":\"crates/sim/src/x.rs\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"grandfathered\":2"));
    }
}
