//! Deterministic workspace source discovery.
//!
//! The analyzer walks, in sorted order:
//!
//! * `crates/<name>/src/**/*.rs` for every crate except `crates/vendor`
//!   (the API-compatible stand-ins are third-party by intent),
//! * `crates/<name>/Cargo.toml` (manifest layering check),
//! * the root crate's `src/*.rs` and `examples/*.rs`.
//!
//! Integration tests (`tests/`) and criterion benches (`benches/`) are
//! never walked: they are test code, which the rules exempt wholesale.

use std::path::{Path, PathBuf};

/// A source file to lint, with its workspace-relative display path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Absolute (or root-joined) path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes, used in diagnostics.
    pub rel: String,
    /// Whether this is a `Cargo.toml` manifest rather than Rust source.
    pub manifest: bool,
}

/// Enumerate the workspace's lintable files under `root`, sorted by
/// relative path so diagnostics order never depends on directory layout.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();

    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let name = file_name(&crate_dir);
        if name == "vendor" {
            continue;
        }
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            files.push(source_file(root, manifest, true));
        }
        collect_rs(root, &crate_dir.join("src"), &mut files)?;
    }
    collect_rs(root, &root.join("src"), &mut files)?;
    collect_rs(root, &root.join("examples"), &mut files)?;

    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn source_file(root: &Path, path: PathBuf, manifest: bool) -> SourceFile {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(&path)
        .to_string_lossy()
        .replace('\\', "/");
    SourceFile {
        path,
        rel,
        manifest,
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn sorted_dirs(dir: &Path) -> Result<Vec<PathBuf>, String> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Recursively collect `.rs` files under `dir` (sorted within each level).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(source_file(root, path, false));
        }
    }
    Ok(())
}
