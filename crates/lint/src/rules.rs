//! The rule engine: determinism & robustness invariants over token streams.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` iteration in `core`/`loadgen`/`report`/`server` (order nondeterminism on output paths) |
//! | D002 | no wall-clock (`Instant::now`, `SystemTime`) anywhere without a justifying pragma — it breaks replay in the simulation crates and must be intentional elsewhere |
//! | D003 | no unseeded RNG (`thread_rng`, `from_entropy`, `OsRng`) outside bench/CLI entry points |
//! | D004 | no float `==`/`!=` (use `to_bits` parity or an explicit tolerance) |
//! | P001 | no `.unwrap()`/`.expect(` in the `server`/`loadgen` crates — a panic on a request path is a silently dropped connection |
//! | L001 | crate layering: `units→stats→sim→core→{netsim,iosim}→exec→loadgen→report→server`; upward or lateral imports are errors |
//!
//! Code under `#[cfg(test)]`/`#[test]` is exempt from every rule: tests
//! may compare floats exactly, unwrap freely and measure wall-clock. The
//! workspace walker additionally never feeds `tests/`/`benches/`
//! directories to the engine.

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma;
use crate::Finding;

/// Static description of one rule, for `--list-rules` and the docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Rule code (`D001`…).
    pub code: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// Every suppressible rule the engine knows.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        code: "D001",
        summary:
            "no HashMap/HashSet iteration in core/loadgen/report/server (order nondeterminism)",
    },
    RuleInfo {
        code: "D002",
        summary: "no wall-clock (Instant::now/SystemTime) without a justifying pragma",
    },
    RuleInfo {
        code: "D003",
        summary: "no unseeded RNG (thread_rng/from_entropy/OsRng) outside bench/CLI entry points",
    },
    RuleInfo {
        code: "D004",
        summary: "no float ==/!= (use to_bits parity or an explicit tolerance)",
    },
    RuleInfo {
        code: "P001",
        summary:
            "no .unwrap()/.expect( in server/loadgen non-test code (panic drops the connection)",
    },
    RuleInfo {
        code: "L001",
        summary: "crate layering units→stats→sim→core→{netsim,iosim}→exec→loadgen→report→server",
    },
];

/// Does a suppressible rule with this code exist?
pub fn rule_exists(code: &str) -> bool {
    RULES.iter().any(|r| r.code == code)
}

/// Layer rank of a workspace crate; `None` for crates outside the layered
/// stack (the analyzer itself, vendored stand-ins).
pub fn layer_rank(crate_name: &str) -> Option<u32> {
    Some(match crate_name {
        "units" => 0,
        "stats" => 1,
        "sim" => 2,
        "core" => 3,
        "netsim" | "iosim" => 4,
        "exec" => 5,
        "loadgen" => 6,
        "report" => 7,
        "server" => 8,
        "bench" => 9,
        // The root binary/library sits on top of everything.
        "stream-score" => 10,
        _ => return None,
    })
}

/// Which workspace crate a file belongs to, for scoping the rules.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileContext {
    /// Short crate name (`core`, `server`, …; `stream-score` for the root
    /// crate). `None` disables the crate-scoped rules (D001, D003 scope,
    /// P001, L001) but keeps the universal ones (D002, D004).
    pub crate_name: Option<String>,
}

impl FileContext {
    /// Infer the owning crate from a workspace-relative path:
    /// `crates/<name>/…` maps to `<name>`; `src/…`, `examples/…` and
    /// `tests/…` map to the root `stream-score` crate.
    pub fn for_path(path: &str) -> Self {
        let path = path.replace('\\', "/");
        let crate_name = if let Some(rest) = path.strip_prefix("crates/") {
            rest.split('/').next().map(str::to_string)
        } else if path.starts_with("src/")
            || path.starts_with("examples/")
            || path.starts_with("tests/")
        {
            Some("stream-score".to_string())
        } else {
            None
        };
        FileContext { crate_name }
    }

    /// Context for an explicit crate name (fixture tests, `--context`).
    pub fn for_crate(name: &str) -> Self {
        FileContext {
            crate_name: Some(name.to_string()),
        }
    }

    fn name(&self) -> &str {
        self.crate_name.as_deref().unwrap_or("")
    }

    fn d001_applies(&self) -> bool {
        matches!(self.name(), "core" | "loadgen" | "report" | "server")
    }

    fn p001_applies(&self) -> bool {
        matches!(self.name(), "server" | "loadgen")
    }

    /// Bench binaries and the CLI are entry points: ambient entropy is
    /// acceptable there (and only there).
    fn d003_exempt(&self) -> bool {
        matches!(self.name(), "bench" | "stream-score")
    }
}

/// Lint one file's source text. `path` is used verbatim in diagnostics.
pub fn lint_source(path: &str, source: &str, ctx: &FileContext) -> Vec<Finding> {
    let tokens = lex(source);
    let pragmas = pragma::collect(&tokens);
    // Comments only matter for pragmas; rule patterns match adjacent
    // code tokens.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let test_regions = test_regions(&code);
    let in_test = |line: u32| {
        test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    };

    let mut findings = pragmas.error_findings(path);
    let mut emit = |rule: &str, line: u32, message: String| {
        if !in_test(line) && !pragmas.allows(rule, line) {
            findings.push(Finding {
                rule: rule.to_string(),
                file: path.to_string(),
                line,
                message,
            });
        }
    };

    check_d001(&code, ctx, &mut emit);
    check_d002(&code, &mut emit);
    check_d003(&code, ctx, &mut emit);
    check_d004(&code, &mut emit);
    check_p001(&code, ctx, &mut emit);
    check_l001(&code, ctx, &mut emit);

    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

fn ident<'t>(tok: Option<&&'t Token>) -> Option<&'t str> {
    match tok.map(|t| &t.kind) {
        Some(TokenKind::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn is_op(tok: Option<&&Token>, op: &str) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokenKind::Op(o)) if *o == op)
}

fn is_float(tok: Option<&&Token>) -> bool {
    matches!(tok.map(|t| &t.kind), Some(TokenKind::Float))
}

/// Line spans covered by `#[cfg(test)]` / `#[test]` items.
fn test_regions(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_op(code.get(i), "#") && is_op(code.get(i + 1), "[") {
            // Collect the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match &code[j].kind {
                    TokenKind::Op("[") => depth += 1,
                    TokenKind::Op("]") => depth -= 1,
                    TokenKind::Ident(name) => attr.push(name.as_str()),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = attr.first() == Some(&"test")
                || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
            if is_test_attr {
                // Find the item's block: first `{` outside parens; a `;`
                // first means a braceless item (nothing more to mark).
                let mut paren = 0i32;
                while j < code.len() {
                    match &code[j].kind {
                        TokenKind::Op("(") => paren += 1,
                        TokenKind::Op(")") => paren -= 1,
                        TokenKind::Op(";") if paren == 0 => break,
                        TokenKind::Op("{") if paren == 0 => {
                            let start = code[j].line;
                            let mut braces = 1i32;
                            j += 1;
                            while j < code.len() && braces > 0 {
                                match &code[j].kind {
                                    TokenKind::Op("{") => braces += 1,
                                    TokenKind::Op("}") => braces -= 1,
                                    _ => {}
                                }
                                j += 1;
                            }
                            let end = code.get(j - 1).map(|t| t.line).unwrap_or(start);
                            regions.push((start, end));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn check_d001(code: &[&Token], ctx: &FileContext, emit: &mut impl FnMut(&str, u32, String)) {
    if !ctx.d001_applies() {
        return;
    }
    // Pass 1: names bound to a HashMap/HashSet in this file, via a type
    // ascription (`name: HashMap<…>`, fields included) or a direct
    // construction (`name = HashMap::new()`).
    let mut bound: Vec<(String, &'static str)> = Vec::new();
    for i in 0..code.len() {
        let Some(kind @ ("HashMap" | "HashSet")) = ident(code.get(i)) else {
            continue;
        };
        if (is_op(code.get(i.wrapping_sub(1)), ":") || is_op(code.get(i.wrapping_sub(1)), "="))
            && i >= 2
        {
            if let Some(name) = ident(code.get(i - 2)) {
                let label = if kind == "HashMap" {
                    "HashMap"
                } else {
                    "HashSet"
                };
                bound.push((name.to_string(), label));
            }
        }
    }
    let kind_of = |name: &str| bound.iter().find(|(n, _)| n == name).map(|(_, k)| *k);
    // Pass 2: iteration over a bound name.
    for i in 0..code.len() {
        if let Some(name) = ident(code.get(i)) {
            if let Some(kind) = kind_of(name) {
                if is_op(code.get(i + 1), ".") {
                    if let Some(method) = ident(code.get(i + 2)) {
                        if ITER_METHODS.contains(&method) && is_op(code.get(i + 3), "(") {
                            emit(
                                "D001",
                                code[i + 2].line,
                                format!(
                                    "iteration over {kind} `{name}` (`.{method}()`): \
                                     hash order is nondeterministic — sort first or use a BTree collection"
                                ),
                            );
                        }
                    }
                }
            }
            // `for x in [&][mut] name { … }`
            if name == "in" {
                let mut j = i + 1;
                while is_op(code.get(j), "&") || ident(code.get(j)) == Some("mut") {
                    j += 1;
                }
                if let Some(target) = ident(code.get(j)) {
                    if let Some(kind) = kind_of(target) {
                        if is_op(code.get(j + 1), "{") {
                            emit(
                                "D001",
                                code[j].line,
                                format!(
                                    "for-loop over {kind} `{target}`: hash order is \
                                     nondeterministic — sort first or use a BTree collection"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

fn check_d002(code: &[&Token], emit: &mut impl FnMut(&str, u32, String)) {
    for i in 0..code.len() {
        match ident(code.get(i)) {
            Some("Instant")
                if is_op(code.get(i + 1), "::") && ident(code.get(i + 2)) == Some("now") =>
            {
                emit(
                    "D002",
                    code[i].line,
                    "wall-clock read (`Instant::now`): nondeterministic across runs — \
                     simulation time must come from the sim clock; measurement sites need a pragma"
                        .to_string(),
                );
            }
            Some("SystemTime") => {
                emit(
                    "D002",
                    code[i].line,
                    "wall-clock type `SystemTime`: nondeterministic across runs".to_string(),
                );
            }
            _ => {}
        }
    }
}

fn check_d003(code: &[&Token], ctx: &FileContext, emit: &mut impl FnMut(&str, u32, String)) {
    if ctx.d003_exempt() {
        return;
    }
    for tok in code {
        if let TokenKind::Ident(name) = &tok.kind {
            if matches!(name.as_str(), "thread_rng" | "from_entropy" | "OsRng") {
                emit(
                    "D003",
                    tok.line,
                    format!(
                        "unseeded RNG (`{name}`): draws are irreproducible — derive seeds \
                         from `sss_exec::SeedSequence` instead"
                    ),
                );
            }
        }
    }
}

fn check_d004(code: &[&Token], emit: &mut impl FnMut(&str, u32, String)) {
    for i in 0..code.len() {
        let op = match &code[i].kind {
            TokenKind::Op(o @ ("==" | "!=")) => *o,
            _ => continue,
        };
        let prev_float = i > 0 && is_float(code.get(i - 1));
        let next_float =
            is_float(code.get(i + 1)) || (is_op(code.get(i + 1), "-") && is_float(code.get(i + 2)));
        if prev_float || next_float {
            emit(
                "D004",
                code[i].line,
                format!(
                    "float `{op}` against a literal: exact float equality is fragile — \
                     compare `to_bits()`, use a tolerance, or pragma an intentional exact guard"
                ),
            );
        }
    }
}

fn check_p001(code: &[&Token], ctx: &FileContext, emit: &mut impl FnMut(&str, u32, String)) {
    if !ctx.p001_applies() {
        return;
    }
    for i in 0..code.len() {
        if !is_op(code.get(i), ".") {
            continue;
        }
        match ident(code.get(i + 1)) {
            Some("unwrap") if is_op(code.get(i + 2), "(") && is_op(code.get(i + 3), ")") => {
                emit(
                    "P001",
                    code[i + 1].line,
                    "`.unwrap()` on a request-handling path: a panic here silently drops \
                     the connection — handle the error or return a 4xx/5xx body"
                        .to_string(),
                );
            }
            Some("expect") if is_op(code.get(i + 2), "(") => {
                emit(
                    "P001",
                    code[i + 1].line,
                    "`.expect(…)` on a request-handling path: a panic here silently drops \
                     the connection — handle the error or return a 4xx/5xx body"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

fn check_l001(code: &[&Token], ctx: &FileContext, emit: &mut impl FnMut(&str, u32, String)) {
    let Some(own) = ctx.crate_name.as_deref() else {
        return;
    };
    let Some(own_rank) = layer_rank(own) else {
        return;
    };
    for tok in code {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        let Some(dep) = name.strip_prefix("sss_") else {
            continue;
        };
        if dep == own {
            continue;
        }
        if let Some(dep_rank) = layer_rank(dep) {
            if dep_rank >= own_rank {
                emit(
                    "L001",
                    tok.line,
                    format!(
                        "layering violation: `{own}` (layer {own_rank}) references \
                         `sss_{dep}` (layer {dep_rank}) — dependencies must point strictly \
                         down the stack units→stats→sim→core→{{netsim,iosim}}→exec→loadgen→report→server"
                    ),
                );
            }
        }
    }
}

/// Lint a crate manifest: `[dependencies]` entries on `sss-*` crates must
/// point strictly down the stack, mirroring the source-level L001 check
/// for the edges
/// Cargo sees. Manifest findings cannot be pragma'd — baseline them.
pub fn lint_manifest(path: &str, text: &str, ctx: &FileContext) -> Vec<Finding> {
    let Some(own) = ctx.crate_name.as_deref() else {
        return Vec::new();
    };
    let Some(own_rank) = layer_rank(own) else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    let mut in_dependencies = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_dependencies = line == "[dependencies]";
            continue;
        }
        if !in_dependencies {
            continue;
        }
        let Some(rest) = line.strip_prefix("sss-") else {
            continue;
        };
        let dep: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
            .collect();
        if dep == own {
            continue;
        }
        if let Some(dep_rank) = layer_rank(&dep) {
            if dep_rank >= own_rank {
                findings.push(Finding {
                    rule: "L001".to_string(),
                    file: path.to_string(),
                    line: (idx + 1) as u32,
                    message: format!(
                        "layering violation in manifest: `{own}` (layer {own_rank}) depends \
                         on `sss-{dep}` (layer {dep_rank}) — dependencies must point strictly \
                         down the stack"
                    ),
                });
            }
        }
    }
    findings
}
