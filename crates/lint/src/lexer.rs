//! A small hand-rolled Rust lexer.
//!
//! The analyzer only needs a *token-accurate* view of a source file —
//! enough to know that `"Instant::now"` inside a string literal is data,
//! not code, and that a `==` sits next to a float literal. This lexer
//! therefore classifies the token kinds the rules care about and lumps
//! everything else into generic operators. It correctly skips:
//!
//! * line comments and (nested) block comments — surfaced as
//!   [`TokenKind::Comment`] tokens so the pragma layer can read them,
//! * string literals, byte strings, raw strings (`r"…"`, `r#"…"#`, any
//!   hash depth) and raw byte strings,
//! * char and byte-char literals, disambiguated from lifetimes,
//! * numeric literals, classifying floats (decimal point, exponent or
//!   `f32`/`f64` suffix) apart from integers (including `0x`/`0o`/`0b`).
//!
//! Every token carries the 1-based source line it starts on, which is all
//! the diagnostics need for `file:line` anchors.

/// What a token is, as far as the rule engine cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `for`, `unwrap`, …).
    Ident(String),
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`0.0`, `1e-9`, `2f64`).
    Float,
    /// String literal of any flavour (plain, byte, raw); contents dropped.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or punctuation (`==`, `::`, `.`, `{`, …).
    Op(&'static str),
    /// Any punctuation the rules never inspect, kept for adjacency.
    OtherOp,
    /// Line or block comment, text preserved for pragma parsing.
    Comment(String),
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The classified kind.
    pub kind: TokenKind,
}

/// The multi-character operators the rules inspect; matched longest-first
/// so `==` never lexes as two `=`.
const OPS2: &[&str] = &[
    "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=", "<<", ">>",
];

/// Single characters surfaced as named operators.
const OPS1: &str = "=!<>.,;:#&|(){}[]?+-*/%^@";

/// Lex `src` into tokens. Never fails: unrecognized bytes become
/// [`TokenKind::OtherOp`], and unterminated literals end at end-of-file —
/// the analyzer degrades gracefully on mid-edit files.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.out.push(Token { line, kind });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.string();
                    self.push(line, TokenKind::Str);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(line),
                _ => self.operator(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokenKind::Comment(text));
    }

    /// Block comment with Rust's *nested* `/* /* */ */` semantics.
    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(line, TokenKind::Comment(text));
    }

    /// Plain (escaped) string body; the opening `"` is at `pos`.
    fn string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped, including \" and \\
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string body `r##"…"##` with `hashes` hash marks; cursor sits on
    /// the opening quote.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // Escaped char literal: consume escape then to closing quote.
                while let Some(c) = self.bump() {
                    if c == '\\' {
                        self.bump();
                    } else if c == '\'' {
                        break;
                    }
                }
                self.push(line, TokenKind::Char);
            }
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(line, TokenKind::Char);
            }
            _ => {
                // Lifetime: consume identifier characters.
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(line, TokenKind::Lifetime);
            }
        }
    }

    /// Numeric literal starting at a digit. Classifies float vs int:
    /// a decimal point followed by a digit, an exponent part, or an
    /// `f32`/`f64` suffix makes it a float; `1.max(2)` and tuple indexes
    /// stay integers (the dot is not consumed).
    fn number(&mut self, line: u32) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_ascii_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, TokenKind::Int);
            return;
        }
        let digits = |lexer: &mut Self| {
            while let Some(c) = lexer.peek(0) {
                if c == '_' || c.is_ascii_digit() {
                    lexer.bump();
                } else {
                    break;
                }
            }
        };
        digits(self);
        // Fractional part: only if the dot is followed by a digit or by
        // nothing number-like (Rust allows `1.`, but `1.max(2)` is a
        // method call on an integer — leave the dot alone there).
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    is_float = true;
                    self.bump();
                    digits(self);
                }
                Some(c) if c == '_' || c.is_alphabetic() || c == '.' => {}
                _ => {
                    // `1.` at end of expression: trailing-dot float.
                    is_float = true;
                    self.bump();
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
            if self
                .peek(1 + sign)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
            {
                is_float = true;
                self.bump();
                if sign == 1 {
                    self.bump();
                }
                digits(self);
            }
        }
        // Suffix (`u64`, `f32`, `usize`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.push(
            line,
            if is_float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
        );
    }

    /// Identifier — or, when the identifier is a string prefix (`r`, `b`,
    /// `br`) directly followed by a quote or raw-string hashes, the
    /// corresponding literal.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        match ident.as_str() {
            "r" | "br" | "b" | "rb" => {
                // Raw string: optional hashes then a quote.
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    if hashes == 0 {
                        self.string();
                    } else {
                        self.raw_string(hashes);
                    }
                    self.push(line, TokenKind::Str);
                    return;
                }
                if ident == "b" && self.peek(0) == Some('\'') {
                    self.char_or_lifetime(line);
                    return;
                }
                self.push(line, TokenKind::Ident(ident));
            }
            _ => self.push(line, TokenKind::Ident(ident)),
        }
    }

    fn operator(&mut self, line: u32) {
        if let (Some(a), Some(b)) = (self.peek(0), self.peek(1)) {
            let pair: String = [a, b].iter().collect();
            if let Some(op) = OPS2.iter().find(|o| **o == pair) {
                self.bump();
                self.bump();
                self.push(line, TokenKind::Op(op));
                return;
            }
        }
        let c = self.bump().unwrap_or(' ');
        if let Some(idx) = OPS1.find(c) {
            // Safety of the slice: OPS1 is ASCII, so byte index == char index.
            self.push(line, TokenKind::Op(&OPS1[idx..idx + c.len_utf8()]));
        } else {
            self.push(line, TokenKind::OtherOp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ops() {
        assert_eq!(
            kinds("a == b.c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Op("=="),
                TokenKind::Ident("b".into()),
                TokenKind::Op("."),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn floats_vs_ints() {
        assert_eq!(kinds("1.0"), vec![TokenKind::Float]);
        assert_eq!(kinds("1e-9"), vec![TokenKind::Float]);
        assert_eq!(kinds("2f64"), vec![TokenKind::Float]);
        assert_eq!(kinds("42"), vec![TokenKind::Int]);
        assert_eq!(kinds("0xFF"), vec![TokenKind::Int]);
        // `1.max(2)`: integer, method call — the dot survives as an op.
        assert_eq!(
            kinds("1.max(2)")[..3],
            [
                TokenKind::Int,
                TokenKind::Op("."),
                TokenKind::Ident("max".into())
            ]
        );
        // Tuple indexing after a call chain stays integral.
        assert_eq!(
            kinds("x.0 != 0.0"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Op("."),
                TokenKind::Int,
                TokenKind::Op("!="),
                TokenKind::Float,
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(kinds(r#""Instant::now()""#), vec![TokenKind::Str]);
        assert_eq!(kinds(r##"r#"HashMap.iter()"#"##), vec![TokenKind::Str]);
        assert_eq!(kinds(r#"b"thread_rng""#), vec![TokenKind::Str]);
        assert_eq!(
            kinds("\"a \\\" still string == 0.0\""),
            vec![TokenKind::Str]
        );
    }

    #[test]
    fn chars_and_lifetimes() {
        assert_eq!(kinds("'x'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        assert_eq!(kinds("b'q'"), vec![TokenKind::Char]);
        assert_eq!(
            kinds("&'static str")[..2],
            [TokenKind::Op("&"), TokenKind::Lifetime]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner == 0.0 */ still outer */ code");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0], TokenKind::Comment(_)));
        assert_eq!(toks[1], TokenKind::Ident("code".into()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\n\"multi\nline\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // ...and spans to line 3
    }

    #[test]
    fn comments_preserve_text_for_pragmas() {
        let toks = lex("// sss-lint: allow(D002, timing)\nx");
        match &toks[0].kind {
            TokenKind::Comment(text) => assert!(text.contains("allow(D002")),
            other => panic!("expected comment, got {other:?}"),
        }
    }
}
