//! Integration coverage for the facility-scenario registry and the
//! parallel suite: serde round-trips, registry lookups, and determinism
//! of the parallel fan-out.

use stream_score::prelude::*;
use stream_score::units::{Bytes, TimeDelta};

/// A trimmed configuration so the full 13-scenario matrix stays fast in
/// debug test runs: one congestion level, tiny probe volumes.
fn tiny_config(seed: u64) -> SuiteConfig {
    let mut config = SuiteConfig::quick(seed);
    config.congestion_levels = vec![1];
    config.parallel_flows = 2;
    config.probe_wire_time = TimeDelta::from_millis(5.0);
    config.probe_floor = Bytes::from_mb(1.0);
    config.probe_ceiling = Bytes::from_mb(8.0);
    config.frames = 8;
    config.files = 4;
    config
}

#[test]
fn registry_round_trips_through_serde() {
    let registry = Scenario::registry();
    assert!(registry.len() >= 12, "catalog shrank to {}", registry.len());
    let json = serde_json::to_string(&registry).expect("serialize registry");
    let back: Vec<ScenarioSpec> = serde_json::from_str(&json).expect("deserialize registry");
    assert_eq!(registry, back, "specs must round-trip losslessly");
}

#[test]
fn every_registered_scenario_resolves_by_id() {
    for spec in Scenario::registry() {
        let s =
            Scenario::by_id(&spec.id).unwrap_or_else(|| panic!("{} not resolvable by id", spec.id));
        assert_eq!(s.id, spec.id);
        assert_eq!(s, spec.build().expect("registry spec builds"));
        s.params.validated().expect("scenario params valid");
    }
    assert!(Scenario::by_id("no-such-facility").is_none());
}

#[test]
fn scenarios_round_trip_through_specs() {
    for s in Scenario::all() {
        let rebuilt = s.spec().build().expect("spec rebuilds");
        assert_eq!(s.id, rebuilt.id);
        assert_eq!(s.tier, rebuilt.tier);
        // f64 → GB → f64 is exact for these magnitudes.
        assert_eq!(s.params, rebuilt.params);
    }
}

#[test]
fn full_bundled_suite_parallel_matches_sequential() {
    let suite = ScenarioSuite::bundled(tiny_config(7)).unwrap();
    let par = suite.run(&ThreadPool::new(4));
    let seq = suite.run_sequential();
    assert_eq!(par.len(), seq.len());
    assert_eq!(par.len(), Scenario::registry().len());
    // Bit-identical, not approximately equal: same seeds, same order.
    assert_eq!(par, seq);
    // And stable under a different worker count.
    let par8 = suite.run(&ThreadPool::new(8));
    assert_eq!(par, par8);
}

#[test]
fn suite_covers_model_netsim_and_iosim_per_scenario() {
    let suite = ScenarioSuite::bundled(tiny_config(42)).unwrap();
    let evals = suite.run(&ThreadPool::with_available_parallelism());
    for e in &evals {
        // Model: the analytic verdict is present and self-consistent.
        assert!(e.decision.t_local.as_secs() > 0.0, "{}", e.scenario.id);
        // Netsim: every configured congestion level was probed.
        assert_eq!(e.congestion.len(), suite.config().congestion_levels.len());
        for c in &e.congestion {
            assert!(c.sss >= 1.0, "{}: SSS {} < 1", e.scenario.id, c.sss);
            assert!(c.utilization > 0.0, "{}", e.scenario.id);
        }
        // Iosim: streaming never loses to the file path.
        assert!(
            e.io.streaming_completion_s <= e.io.file_completion_s + 1e-9,
            "{}: streaming {} vs file {}",
            e.scenario.id,
            e.io.streaming_completion_s,
            e.io.file_completion_s
        );
        assert!(e.io.theta_estimate.unwrap_or(1.0) >= 1.0 - 1e-9);
    }
}

#[test]
fn suite_evaluations_serialize() {
    let suite = ScenarioSuite::new(
        vec![Scenario::by_id("deleria-frib").unwrap()],
        tiny_config(3),
    )
    .unwrap();
    let evals = suite.run_sequential();
    let json = serde_json::to_string(&evals).expect("serialize evaluations");
    let back: Vec<ScenarioEvaluation> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(evals, back);
}

#[test]
fn different_seeds_perturb_the_probes() {
    let scenarios = vec![Scenario::by_id("lcls-coherent-scattering").unwrap()];
    let a = ScenarioSuite::new(scenarios.clone(), tiny_config(1))
        .unwrap()
        .run_sequential();
    let b = ScenarioSuite::new(scenarios, tiny_config(2))
        .unwrap()
        .run_sequential();
    assert_ne!(
        a[0].congestion, b[0].congestion,
        "distinct suite seeds must yield distinct netsim probes"
    );
}

#[test]
fn summary_table_covers_the_catalog() {
    let suite = ScenarioSuite::bundled(tiny_config(42)).unwrap();
    let evals = suite.run_sequential();
    let table = summary_table(&evals);
    assert_eq!(table.len(), Scenario::registry().len());
    let text = table.to_text();
    for spec in Scenario::registry() {
        assert!(text.contains(&spec.id), "missing {} in table", spec.id);
    }
}
