//! Every concrete number the paper states, asserted in one place.
//!
//! These are the fixed points of the reproduction: arithmetic identities
//! (which must match exactly) and measured anchors (which must land in
//! the right regime). EXPERIMENTS.md cites this file.

use stream_score::prelude::*;

// --- §4.1: the theoretical transfer-time floor ---

#[test]
fn theoretical_time_for_half_gb_at_25gbps_is_160ms() {
    let t = Bytes::from_gb(0.5) / Rate::from_gbps(25.0);
    assert!((t.as_secs() - 0.16).abs() < 1e-12);
}

#[test]
fn observed_5s_maximum_is_sss_31() {
    // "observed maximum transfer times exceed five seconds" → SSS > 31.
    let sss = StreamingSpeedScore::from_measurement(
        TimeDelta::from_secs(5.0),
        Bytes::from_gb(0.5),
        Rate::from_gbps(25.0),
    )
    .unwrap();
    assert!((sss.score().value() - 31.25).abs() < 1e-9);
}

// --- Table 2: the experiment grid ---

#[test]
fn table2_has_24_experiments() {
    let spec = SweepSpec::paper_grid(SpawnStrategy::Simultaneous, 1, 0);
    assert_eq!(spec.cells(), 24);
    assert_eq!(spec.duration_s, 10);
    assert_eq!(spec.concurrency, (1..=8).collect::<Vec<_>>());
    assert_eq!(spec.parallel_flows, vec![2, 4, 8]);
    assert_eq!(spec.bytes_per_client, Bytes::from_gb(0.5));
}

#[test]
fn table1_testbed_constants() {
    let cfg = SimConfig::paper_testbed();
    assert!((cfg.bottleneck.rate.as_gbps() - 25.0).abs() < 1e-9);
    // RTT 16 ms (paper's ping) plus sub-0.1 ms LAN hops.
    assert!((cfg.base_rtt().as_millis() - 16.0).abs() < 0.2);
    assert_eq!(cfg.tcp.mss, 8_948); // MTU 9000 jumbo frames
}

// --- Table 3: LCLS-II workflows ---

#[test]
fn table3_coherent_scattering_34tf_per_2gb() {
    let s = Scenario::by_id("lcls-coherent-scattering").unwrap();
    let work = s.params.intensity * s.params.data_unit;
    assert!((work.as_tflop() - 34.0).abs() < 1e-9);
    assert!((s.params.required_stream_rate().as_gigabytes_per_sec() - 2.0).abs() < 1e-12);
}

#[test]
fn table3_liquid_scattering_20tf_per_4gb_is_32gbps() {
    let s = Scenario::by_id("lcls-liquid-scattering").unwrap();
    let work = s.params.intensity * s.params.data_unit;
    assert!((work.as_tflop() - 20.0).abs() < 1e-9);
    // "Obviously 4 GB/s (32 Gbps) would be unfeasible because it is
    // higher than our link capacity of 25 Gbps."
    assert!((s.params.required_stream_rate().as_gbps() - 32.0).abs() < 1e-9);
    assert_eq!(decide(&s.params).decision, Decision::Infeasible);
}

// --- §5: the case-study arithmetic ---

#[test]
fn coherent_scattering_at_64pct_with_1_2s_worst_leaves_8_8s() {
    // The paper's own numbers: a 1.2 s worst-case stream against the
    // 10 s Tier-2 budget leaves 8.8 s for analysis.
    let s = Scenario::by_id("lcls-coherent-scattering").unwrap();
    // 1.2 s on the 0.64 s theoretical time of 2 GB at 25 Gbps.
    let sss = Ratio::new(1.2 / 0.64);
    let report = TierReport::evaluate(&s.params, sss, Tier::NearRealTime).unwrap();
    assert!((report.worst_transfer.as_secs() - 1.2).abs() < 1e-9);
    assert!((report.compute_budget.as_secs() - 8.8).abs() < 1e-9);
    assert!(report.feasible);
}

#[test]
fn liquid_scattering_reduced_at_96pct_with_6s_worst_leaves_4s() {
    let s = Scenario::by_id("lcls-liquid-scattering-reduced").unwrap();
    // 96% utilization of 25 Gbps by a 3 GB unit: theoretical 0.96 s.
    let util =
        s.params.required_stream_rate().as_bytes_per_sec() / s.params.bandwidth.as_bytes_per_sec();
    assert!((util - 0.96).abs() < 1e-9);
    let sss = Ratio::new(6.0 / 0.96);
    let report = TierReport::evaluate(&s.params, sss, Tier::NearRealTime).unwrap();
    assert!((report.worst_transfer.as_secs() - 6.0).abs() < 1e-9);
    assert!((report.compute_budget.as_secs() - 4.0).abs() < 1e-9);
}

// --- §2.2 science-driver magnitudes ---

#[test]
fn lhc_rates_dwarf_any_wan() {
    // 40 TB/s against a 1 Tbps link: 320× over capacity.
    let demand = Rate::from_terabytes_per_sec(40.0);
    let wan = Rate::from_tbps(1.0);
    assert!((demand.as_bytes_per_sec() / wan.as_bytes_per_sec() - 320.0).abs() < 1e-9);
}

#[test]
fn deleria_event_stream_reduction() {
    // "producing a 240 MB/s event stream ... a data reduction of 97.5%"
    // from the 40 Gbps (5 GB/s... the published figures give 9.6 GB/s
    // raw for 240 MB/s at 97.5%) — assert the reduction arithmetic.
    let reduced = Rate::from_megabytes_per_sec(240.0);
    let raw = reduced / (1.0 - 0.975);
    assert!((raw.as_gigabytes_per_sec() - 9.6).abs() < 1e-9);
}

// --- Figure 4 workload geometry ---

#[test]
fn aps_scan_is_1440_frames_of_8mb() {
    let scan = FrameSource::aps_scan(TimeDelta::from_secs(0.033));
    assert_eq!(scan.n_frames, 1440);
    assert!((scan.frame_bytes.as_b() - 8_388_608.0).abs() < 1.0);
    // ~12.1 decimal GB of pixels (paper rounds to 12.6 GB with overhead).
    assert!((scan.total_bytes().as_gb() - 12.0795).abs() < 1e-3);
}

// --- measured anchors (miniature scale, must land in the regime) ---

#[test]
fn measured_headline_reduction_is_around_97pct() {
    let scan = FrameSource::aps_scan(TimeDelta::from_secs(0.033));
    let stream = StreamingPipeline::new(scan, presets::aps_alcf_wan()).run();
    let files = FileBasedPipeline::new(scan, 1440, presets::aps_to_alcf()).run();
    let reduction = 1.0 - stream.completion.as_secs() / files.completion.as_secs();
    assert!(
        (0.90..0.99).contains(&reduction),
        "headline reduction {reduction} out of the ~97% regime"
    );
}

#[test]
fn measured_worst_case_at_64pct_offered_is_around_1_2s() {
    // The §5 anchor measured live: 4 clients/s × 0.5 GB (64% offered) on
    // the simulated testbed, short horizon for test speed.
    let exp = Experiment {
        config: SimConfig::paper_testbed(),
        duration_s: 2,
        concurrency: 4,
        parallel_flows: 8,
        bytes_per_client: Bytes::from_gb(0.5),
        strategy: SpawnStrategy::Simultaneous,
        start_jitter: 0.002,
        seed: 42,
    };
    let worst = exp.run().worst_transfer_time().unwrap().as_secs();
    assert!(
        (0.6..2.5).contains(&worst),
        "worst at 64% should sit near the paper's 1.2 s, got {worst}"
    );
}
