//! Integration tests for the break-even frontier engine: boundary
//! physics, parallel/sequential byte-identity, refinement convergence,
//! and the `POST /frontier` HTTP round-trip.

use std::io::{Read, Write};
use std::net::TcpStream;

use stream_score::core::frontier::{Axis, FrontierMap, FrontierSpec};
use stream_score::prelude::*;
use stream_score::server::{Server, ServerConfig};

fn lcls() -> ModelParams {
    Scenario::by_id("lcls-coherent-scattering").unwrap().params
}

fn spec(resolution: usize) -> FrontierSpec {
    let mut spec = FrontierSpec::new(
        Axis::parse("wan_gbps:1:400").unwrap(),
        Axis::parse("data_gb:0.5:50").unwrap(),
    );
    spec.resolution = resolution;
    spec
}

#[test]
fn boundary_is_monotone_along_the_feasibility_diagonal() {
    // The feasibility frontier sits at α·Bw = S: doubling the data volume
    // must double the bandwidth where the decision flips. The refined
    // boundary points must reproduce both the monotonicity and the slope.
    let map = spec(16).compute(&lcls());
    let mut flips: Vec<(f64, f64)> = map.slices[0]
        .boundary
        .iter()
        .filter(|b| b.along_x && b.lower == Decision::Infeasible)
        .map(|b| (b.y, b.x))
        .collect();
    flips.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert!(
        flips.len() >= 4,
        "expected a feasibility frontier: {flips:?}"
    );
    for w in flips.windows(2) {
        assert!(w[1].1 > w[0].1, "x* must grow with volume: {flips:?}");
    }
    // Analytic check: x* = 8·S_gb/α Gbps (α = 0.8 for LCLS-II).
    for (y, x) in &flips {
        let expected = 8.0 * y / 0.8;
        assert!(
            (x - expected).abs() < 0.01 * expected + 0.5,
            "boundary at y={y} expected x*≈{expected}, got {x}"
        );
    }
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let job = FrontierJob::new(lcls(), spec(12)).unwrap();
    let seq = job.run_sequential();
    for workers in [1, 4, 8] {
        let par = job.run(&ThreadPool::new(workers));
        assert_eq!(par, seq, "{workers} workers changed the result");
        assert_eq!(
            serde_json::to_string(&par).unwrap(),
            serde_json::to_string(&seq).unwrap(),
            "{workers} workers changed the serialized bytes"
        );
    }
}

#[test]
fn refinement_converges_to_the_configured_tolerance() {
    for tolerance in [1e-2, 1e-3, 1e-4] {
        let mut s = spec(10);
        s.tolerance = tolerance;
        let map = s.compute(&lcls());
        let slice = &map.slices[0];
        assert!(!slice.boundary.is_empty());
        for b in &slice.boundary {
            let axis = if b.along_x { &s.x } else { &s.y };
            let tol_abs = tolerance * (axis.hi - axis.lo);
            assert!(
                b.width <= tol_abs || b.evaluations as usize >= s.max_bisections,
                "tolerance {tolerance}: bracket {} wider than {tol_abs}",
                b.width
            );
        }
        // Tighter tolerance must not be free: more bisection work.
        assert!(map.evaluations < map.dense_grid_equivalent);
    }
    // And the refinement budget grows as the tolerance shrinks.
    let coarse = {
        let mut s = spec(10);
        s.tolerance = 1e-2;
        s.compute(&lcls()).evaluations
    };
    let fine = {
        let mut s = spec(10);
        s.tolerance = 1e-4;
        s.compute(&lcls()).evaluations
    };
    assert!(fine > coarse);
}

/// One request over a fresh connection; returns (status, body).
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_owned();
    (status, body)
}

#[test]
fn http_frontier_round_trips_and_memoizes() {
    let server = Server::bind(ServerConfig {
        port: 0,
        workers: 4,
        cache_capacity: 256,
        max_batch: 8,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let handle = server.spawn();

    let request = r#"{"workload":{"data_gb":2.0,"intensity_tflop_per_gb":17.0,
        "local_tflops":10.0,"remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8},
        "x":"wan_gbps:1:400","y":"data_gb:0.5:50","resolution":12}"#;
    let (status, body) = call(addr, "POST", "/frontier", request);
    assert_eq!(status, 200, "{body}");
    let served: FrontierMap = serde_json::from_str(&body).expect("frontier map parses");

    // The service must return exactly the cells the library computes.
    let mut spec = FrontierSpec::new(
        Axis::parse("wan_gbps:1:400").unwrap(),
        Axis::parse("data_gb:0.5:50").unwrap(),
    );
    spec.resolution = 12;
    spec.tolerance = 1e-3;
    let local = FrontierJob::new(lcls(), spec).unwrap().run_sequential();
    assert_eq!(served.slices, local.slices);
    assert_eq!(served.evaluations, local.evaluations);

    // A repeat of the same query is answered from the memoized body cache
    // with identical bytes.
    let (status, again) = call(addr, "POST", "/frontier", request);
    assert_eq!(status, 200);
    assert_eq!(body, again, "cache hit must serve the miss's bytes");
    let (_, health) = call(addr, "GET", "/healthz", "");
    assert!(
        health.contains("\"frontier_cache\""),
        "healthz exposes frontier cache: {health}"
    );
    let health: stream_score::server::Health = serde_json::from_str(&health).unwrap();
    // The computing request looks the key up twice (initial probe plus the
    // re-check after winning the single-flight claim), so one computation
    // shows as two misses; the repeat request is the lone hit.
    assert_eq!(health.frontier_cache.misses, 2);
    assert_eq!(health.frontier_cache.hits, 1);
    assert_eq!(health.frontier_cache.entries, 1);

    // Bad axes and oversized grids get 400s, not work.
    let (status, body) = call(
        addr,
        "POST",
        "/frontier",
        &request.replace("wan_gbps:1:400", "parsecs:1:2"),
    );
    assert_eq!(status, 400);
    assert!(body.contains("unknown axis"), "{body}");
    let (status, body) = call(
        addr,
        "POST",
        "/frontier",
        &request.replace("\"resolution\":12", "\"resolution\":100000"),
    );
    assert_eq!(status, 400);
    assert!(body.contains("cap"), "{body}");
    let (status, _) = call(addr, "GET", "/frontier", "");
    assert_eq!(status, 405);

    handle.shutdown();
}

#[test]
fn concurrent_identical_frontier_requests_single_flight() {
    let server = Server::bind(ServerConfig {
        port: 0,
        workers: 2,
        cache_capacity: 64,
        max_batch: 8,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();
    let handle = server.spawn();

    let request = r#"{"workload":{"data_gb":2.0,"intensity_tflop_per_gb":17.0,
        "local_tflops":10.0,"remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8},
        "x":"wan_gbps:1:400","y":"data_gb:0.5:50","resolution":16}"#;
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let (status, body) = call(addr, "POST", "/frontier", request);
                    assert_eq!(status, 200);
                    body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "all concurrent answers identical");
    }
    // Single-flight: only one computation populated the cache.
    let (_, health) = call(addr, "GET", "/healthz", "");
    let health: stream_score::server::Health = serde_json::from_str(&health).unwrap();
    assert_eq!(health.frontier_cache.entries, 1);
    handle.shutdown();
}

#[test]
fn three_d_frontier_slices_along_remote_compute() {
    let mut s = spec(8);
    s.z = Some(Axis::parse("remote_tflops:20:2000:log").unwrap());
    s.slices = 3;
    let job = FrontierJob::new(lcls(), s).unwrap();
    let map = job.run(&ThreadPool::new(4));
    assert_eq!(map.slices.len(), 3);
    // Faster remote machines can only grow the streaming regime.
    let fractions: Vec<f64> = map.slices.iter().map(|s| s.stream_fraction).collect();
    assert!(fractions[0] <= fractions[2], "{fractions:?}");
}
