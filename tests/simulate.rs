//! Integration tests for the trace-driven session-replay validator: the
//! `stream-score simulate` CLI, determinism across execution modes, and
//! the acceptance contract (all catalog scenarios × ≥3 trace shapes,
//! steady agreement within the documented tolerance).

use std::process::Command;

use stream_score::loadgen::{ReplayConfig, SessionReplay, STEADY_TOLERANCE};
use stream_score::prelude::*;
use stream_score::sim::TraceShape;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stream-score"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

// Keep the CLI suite fast: small frame splits.
const SIMULATE_QUICK: &[&str] = &["simulate", "--frames", "16", "--files", "4"];

#[test]
fn simulate_covers_the_catalog_under_four_traces() {
    let (ok, stdout, stderr) = run(SIMULATE_QUICK);
    assert!(ok, "{stderr}");
    for scenario in Scenario::all() {
        assert!(stdout.contains(&scenario.id), "missing {}", scenario.id);
    }
    for shape in ["steady", "diurnal", "bursty", "outage"] {
        assert!(stdout.contains(shape), "missing trace {shape}");
    }
    assert!(stdout.contains("decision agreement"), "{stdout}");
    assert!(stdout.contains("13 scenarios x 4 traces"), "{stdout}");
}

#[test]
fn simulate_check_passes_on_steady_traces() {
    let mut args: Vec<&str> = SIMULATE_QUICK.to_vec();
    args.extend_from_slice(&["--shapes", "steady", "--check", "true"]);
    let (ok, stdout, stderr) = run(&args);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("check passed"), "{stdout}");
}

#[test]
fn simulate_parallel_and_sequential_agree() {
    let mut seq: Vec<&str> = SIMULATE_QUICK.to_vec();
    seq.extend_from_slice(&["--mode", "sequential"]);
    let mut par: Vec<&str> = SIMULATE_QUICK.to_vec();
    par.extend_from_slice(&["--workers", "8"]);
    let (ok_a, stdout_a, _) = run(&seq);
    let (ok_b, stdout_b, _) = run(&par);
    assert!(ok_a && ok_b);
    assert_eq!(stdout_a, stdout_b, "replay output must be bit-identical");
}

#[test]
fn simulate_csv_and_md_formats() {
    let mut csv: Vec<&str> = SIMULATE_QUICK.to_vec();
    csv.extend_from_slice(&["--scenario", "lcls2", "--format", "csv"]);
    let (ok, stdout, _) = run(&csv);
    assert!(ok);
    assert!(stdout.starts_with("scenario,trace,"), "{stdout}");
    assert_eq!(stdout.lines().count(), 1 + 4, "header + one row per shape");

    let mut md: Vec<&str> = SIMULATE_QUICK.to_vec();
    md.extend_from_slice(&["--scenario", "lcls2", "--format", "md"]);
    let (ok, stdout, _) = run(&md);
    assert!(ok);
    assert!(stdout.contains("| scenario |"), "{stdout}");
}

#[test]
fn simulate_rejects_bad_inputs() {
    let (ok, _, stderr) = run(&["simulate", "--shapes", "tsunami"]);
    assert!(!ok);
    assert!(stderr.contains("unknown trace shape"), "{stderr}");

    let (ok, _, stderr) = run(&["simulate", "--frames", "0"]);
    assert!(!ok);
    assert!(stderr.contains("files <= frames"), "{stderr}");

    let (ok, _, stderr) = run(&["simulate", "--mode", "sequential", "--workers", "2"]);
    assert!(!ok);
    assert!(
        stderr.contains("conflicts with --mode sequential"),
        "{stderr}"
    );

    let (ok, _, stderr) = run(&["simulate", "--scenario", "atlantis"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"), "{stderr}");

    let (ok, _, stderr) = run(&["simulate", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers must be >= 1"), "{stderr}");
}

#[test]
fn library_replay_meets_the_acceptance_contract() {
    // The acceptance criteria in one place: every catalog scenario under
    // >= 3 trace shapes, steady within the documented tolerance, and
    // byte-identical parallel replay.
    let replay = SessionReplay::bundled(ReplayConfig::quick(42)).unwrap();
    let report = replay.run(&ThreadPool::new(8));
    assert_eq!(report, replay.run_sequential());

    let scenarios = Scenario::all().len();
    let shapes = replay.config().shapes.len();
    assert!(scenarios >= 13, "catalog shrank to {scenarios}");
    assert!(shapes >= 3, "need >= 3 trace shapes, got {shapes}");
    assert_eq!(report.records.len(), scenarios * shapes);

    let steady = report.shape_summary(TraceShape::Steady).unwrap();
    assert!(steady.max_rel_err <= STEADY_TOLERANCE);
    assert_eq!(steady.agreement, 1.0);

    // The degraded shapes must expose real model error somewhere — the
    // whole point of the ground truth.
    let worst = report
        .shapes
        .iter()
        .map(|s| s.max_rel_err)
        .fold(0.0, f64::max);
    assert!(worst > 0.05, "no shape stressed the model (worst {worst})");
}
