//! Integration tests for the `stream-score` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stream-score"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const DECIDE_ARGS: &[&str] = &[
    "decide",
    "--data",
    "2GB",
    "--intensity",
    "17TF/GB",
    "--local",
    "10TF",
    "--remote",
    "340TF",
    "--bw",
    "25Gbps",
    "--alpha",
    "0.8",
];

#[test]
fn decide_streams_the_table3_workload() {
    let (ok, stdout, _) = run(DECIDE_ARGS);
    assert!(ok);
    assert!(stdout.contains("RemoteStream"), "{stdout}");
    assert!(stdout.contains("T_pct"), "{stdout}");
    assert!(stdout.contains("break-even"), "{stdout}");
    assert!(stdout.contains("biggest lever"), "{stdout}");
}

#[test]
fn decide_flags_infeasible_liquid_scattering() {
    let (ok, stdout, _) = run(&[
        "decide",
        "--data",
        "4GB",
        "--intensity",
        "5TF/GB",
        "--local",
        "10TF",
        "--remote",
        "200TF",
        "--bw",
        "25Gbps",
        "--alpha",
        "1.0",
    ]);
    assert!(ok);
    assert!(stdout.contains("Infeasible"), "{stdout}");
}

#[test]
fn decide_honors_theta() {
    // θ = 6 pushes the remote path past T_local = 3.4 s.
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args.extend_from_slice(&["--theta", "6.0"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok);
    assert!(stdout.contains("decision: Local"), "{stdout}");
}

#[test]
fn tiers_reports_all_three() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args[0] = "tiers";
    args.extend_from_slice(&["--sss", "7.5"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok);
    assert!(stdout.contains("Tier 1"));
    assert!(stdout.contains("Tier 2"));
    assert!(stdout.contains("Tier 3"));
    assert!(stdout.contains("missed"));
    assert!(stdout.contains("OK"));
}

// Keep the CLI suite fast: one congestion level, one-second probes.
const SCENARIOS_QUICK: &[&str] = &["scenarios", "--levels", "1", "--seconds", "1"];

#[test]
fn scenarios_lists_the_bundled_facilities() {
    let (ok, stdout, _) = run(SCENARIOS_QUICK);
    assert!(ok);
    for id in [
        "lcls-coherent-scattering",
        "lcls-liquid-scattering",
        "aps-tomography",
        "deleria-frib",
        "lhc-raw-trigger",
        "aps-u-ptychography",
        "diii-d-between-shot",
        "cryoem-s3df",
        "ska-low-pathfinder",
        "climate-checkpoint-stream",
        "lhc-hlt-stream",
        "dune-protodune-stream",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
    // The suite renders the measured summary table after the catalog.
    assert!(stdout.contains("SSS"), "{stdout}");
    assert!(stdout.contains("util%"), "{stdout}");
}

#[test]
fn scenarios_parallel_and_sequential_agree() {
    let mut seq: Vec<&str> = SCENARIOS_QUICK.to_vec();
    seq.extend_from_slice(&["--mode", "sequential"]);
    let (ok_a, stdout_a, _) = run(SCENARIOS_QUICK);
    let (ok_b, stdout_b, _) = run(&seq);
    assert!(ok_a && ok_b);
    assert_eq!(stdout_a, stdout_b, "parallel output must be bit-identical");
}

#[test]
fn scenarios_markdown_format() {
    let mut args: Vec<&str> = SCENARIOS_QUICK.to_vec();
    args.extend_from_slice(&["--format", "md"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok);
    assert!(stdout.contains("| scenario |"), "{stdout}");
}

#[test]
fn scenarios_rejects_bad_depth() {
    let (ok, _, stderr) = run(&["scenarios", "--depth", "bottomless"]);
    assert!(!ok);
    assert!(stderr.contains("unknown depth"), "{stderr}");
}

#[test]
fn scenarios_engines_agree_byte_for_byte() {
    let mut scalar: Vec<&str> = SCENARIOS_QUICK.to_vec();
    scalar.extend_from_slice(&["--engine", "scalar"]);
    let mut batched: Vec<&str> = SCENARIOS_QUICK.to_vec();
    batched.extend_from_slice(&["--engine", "batched", "--chunk", "3"]);
    let (ok_a, stdout_a, _) = run(&scalar);
    let (ok_b, stdout_b, _) = run(&batched);
    assert!(ok_a && ok_b);
    assert_eq!(
        stdout_a, stdout_b,
        "scalar and batched engines must emit identical bytes"
    );

    let (ok, _, stderr) = run(&["scenarios", "--engine", "vectorized"]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"), "{stderr}");

    // --chunk only tunes the batched engine; pairing it with the scalar
    // oracle is rejected rather than silently ignored.
    let (ok, _, stderr) = run(&["scenarios", "--engine", "scalar", "--chunk", "4"]);
    assert!(!ok);
    assert!(
        stderr.contains("conflicts with --engine scalar"),
        "{stderr}"
    );
}

#[test]
fn scenarios_filters_to_one_facility() {
    let mut args: Vec<&str> = SCENARIOS_QUICK.to_vec();
    args.extend_from_slice(&["--scenario", "frib"]);
    let (ok, stdout, stderr) = run(&args);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("deleria-frib"), "{stdout}");
    assert!(!stdout.contains("lcls-coherent-scattering"), "{stdout}");
}

#[test]
fn scenario_typos_get_a_suggestion() {
    let mut args: Vec<&str> = SCENARIOS_QUICK.to_vec();
    args.extend_from_slice(&["--scenario", "deleria-frab"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(
        stderr.contains("did you mean \"deleria-frib\"?"),
        "{stderr}"
    );

    let (ok, _, stderr) = run(&[
        "frontier",
        "--scenario",
        "lcls3",
        "--x",
        "wan_gbps:1:400",
        "--y",
        "data_gb:1:10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("did you mean \"lcls\"?"), "{stderr}");
}

#[test]
fn scenarios_chunk_conflicts_with_sequential_mode() {
    let mut args: Vec<&str> = SCENARIOS_QUICK.to_vec();
    args.extend_from_slice(&["--mode", "sequential", "--chunk", "4"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(
        stderr.contains("conflicts with --mode sequential"),
        "{stderr}"
    );
}

#[test]
fn chunk_zero_rejected() {
    let mut scen: Vec<&str> = SCENARIOS_QUICK.to_vec();
    scen.extend_from_slice(&["--chunk", "0"]);
    let (ok, _, stderr) = run(&scen);
    assert!(!ok);
    assert!(stderr.contains("--chunk must be >= 1"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "frontier",
        "--scenario",
        "lcls2",
        "--x",
        "wan_gbps:1:400",
        "--y",
        "data_gb:1:10",
        "--chunk",
        "0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--chunk must be >= 1"), "{stderr}");
}

const FRONTIER_QUICK: &[&str] = &[
    "frontier",
    "--scenario",
    "lcls2",
    "--x",
    "wan_gbps:1:400",
    "--y",
    "data_gb:0.5:50",
    "--resolution",
    "10",
];

#[test]
fn frontier_maps_a_scenario_with_aliases() {
    let (ok, stdout, stderr) = run(FRONTIER_QUICK);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("lcls-coherent-scattering"), "{stdout}");
    assert!(stdout.contains("wan_gbps"), "{stdout}");
    assert!(stdout.contains("boundary points"), "{stdout}");
    assert!(stdout.contains("remote-stream"), "{stdout}");
}

#[test]
fn frontier_parallel_and_sequential_agree() {
    let mut seq: Vec<&str> = FRONTIER_QUICK.to_vec();
    seq.extend_from_slice(&["--mode", "sequential"]);
    let mut par: Vec<&str> = FRONTIER_QUICK.to_vec();
    par.extend_from_slice(&["--workers", "8"]);
    let (ok_a, stdout_a, _) = run(&seq);
    let (ok_b, stdout_b, _) = run(&par);
    assert!(ok_a && ok_b);
    assert_eq!(stdout_a, stdout_b, "frontier output must be bit-identical");
}

#[test]
fn frontier_chunk_does_not_change_bytes() {
    let (ok, reference, _) = run(FRONTIER_QUICK);
    assert!(ok);
    for chunk in ["1", "64"] {
        let mut args: Vec<&str> = FRONTIER_QUICK.to_vec();
        args.extend_from_slice(&["--chunk", chunk, "--workers", "4"]);
        let (ok, stdout, stderr) = run(&args);
        assert!(ok, "{stderr}");
        assert_eq!(stdout, reference, "--chunk {chunk} changed the bytes");
    }
    // --chunk tunes the parallel fan-out only.
    let mut args: Vec<&str> = FRONTIER_QUICK.to_vec();
    args.extend_from_slice(&["--mode", "sequential", "--chunk", "4"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(
        stderr.contains("conflicts with --mode sequential"),
        "{stderr}"
    );
}

#[test]
fn frontier_csv_format_lists_cells_and_boundary() {
    let mut args: Vec<&str> = FRONTIER_QUICK.to_vec();
    args.extend_from_slice(&["--format", "csv"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok);
    assert!(stdout.contains("z,x,y,decision,gain,p_remote"), "{stdout}");
    assert!(
        stdout.contains("z,x,y,axis,lower,upper,width,evals"),
        "{stdout}"
    );
}

#[test]
fn frontier_rejects_bad_axes_and_scenarios() {
    let (ok, _, stderr) = run(&[
        "frontier",
        "--scenario",
        "lcls2",
        "--x",
        "parsecs:1:2",
        "--y",
        "data_gb:1:10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown axis"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "frontier",
        "--scenario",
        "atlantis",
        "--x",
        "wan_gbps:1:400",
        "--y",
        "data_gb:1:10",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"), "{stderr}");

    let (ok, _, stderr) = run(&["frontier", "--scenario", "lcls2", "--y", "data_gb:1:10"]);
    assert!(!ok);
    assert!(stderr.contains("missing --x"), "{stderr}");
}

#[test]
fn workers_zero_rejected_everywhere() {
    for args in [
        &[
            "scenarios",
            "--levels",
            "1",
            "--seconds",
            "1",
            "--workers",
            "0",
        ] as &[&str],
        &[
            "loadtest",
            "--clients",
            "1",
            "--requests",
            "1",
            "--workers",
            "0",
        ],
        &["serve", "--port", "0", "--workers", "0"],
        &[
            "frontier",
            "--scenario",
            "lcls2",
            "--x",
            "wan_gbps:1:400",
            "--y",
            "data_gb:1:10",
            "--workers",
            "0",
        ],
    ] {
        let (ok, _, stderr) = run(args);
        assert!(!ok, "{args:?} must fail");
        assert!(
            stderr.contains("--workers must be >= 1"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn missing_flags_fail_with_usage() {
    let (ok, _, stderr) = run(&["decide", "--data", "2GB"]);
    assert!(!ok);
    assert!(stderr.contains("missing --intensity"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn bad_units_fail_gracefully() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args[2] = "2 parsecs";
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(stderr.contains("cannot parse"), "{stderr}");
}

#[test]
fn positional_junk_names_the_offender() {
    let (ok, _, stderr) = run(&["decide", "oops", "--data", "2GB"]);
    assert!(!ok);
    assert!(stderr.contains("expected a flag"), "{stderr}");
    assert!(stderr.contains("\"oops\""), "{stderr}");
}

#[test]
fn flag_missing_value_names_the_flag() {
    let (ok, _, stderr) = run(&["decide", "--data"]);
    assert!(!ok);
    assert!(stderr.contains("--data is missing its value"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn duplicate_flag_names_the_flag() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args.extend_from_slice(&["--data", "3GB"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(stderr.contains("--data given more than once"), "{stderr}");
}

#[test]
fn loadtest_self_serves_when_no_addr_given() {
    let (ok, stdout, stderr) = run(&[
        "loadtest",
        "--clients",
        "2",
        "--requests",
        "10",
        "--distinct",
        "4",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("serving in-process"), "{stdout}");
    assert!(stdout.contains("req/s"), "{stdout}");
    assert!(stdout.contains("mean latency"), "{stdout}");
}

#[test]
fn loadtest_rejects_server_flags_with_addr() {
    let (ok, _, stderr) = run(&["loadtest", "--addr", "127.0.0.1:1", "--workers", "4"]);
    assert!(!ok);
    assert!(stderr.contains("conflicts with --addr"), "{stderr}");
}

#[test]
fn unknown_command_fails() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn plan_reports_headroom_when_feasible() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args[0] = "plan";
    args.extend_from_slice(&["--tier", "2"]);
    let (ok, stdout, _) = run(&args);
    assert!(ok);
    assert!(stdout.contains("already feasible"), "{stdout}");
    assert!(stdout.contains("headroom"), "{stdout}");
}

#[test]
fn plan_prescribes_compute_for_starved_workload() {
    let (ok, stdout, _) = run(&[
        "plan",
        "--data",
        "2GB",
        "--intensity",
        "17TF/GB",
        "--local",
        "10TF",
        "--remote",
        "1TF",
        "--bw",
        "25Gbps",
        "--alpha",
        "0.8",
        "--tier",
        "2",
    ]);
    assert!(ok);
    assert!(stdout.contains("NOT feasible"), "{stdout}");
    assert!(stdout.contains("grow remote compute"), "{stdout}");
}

#[test]
fn plan_rejects_bad_tier() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args[0] = "plan";
    args.extend_from_slice(&["--tier", "9"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(stderr.contains("unknown tier"), "{stderr}");
}

#[test]
fn sss_below_one_rejected() {
    let mut args: Vec<&str> = DECIDE_ARGS.to_vec();
    args[0] = "tiers";
    args.extend_from_slice(&["--sss", "0.5"]);
    let (ok, _, stderr) = run(&args);
    assert!(!ok);
    assert!(stderr.contains("must be >= 1"), "{stderr}");
}
