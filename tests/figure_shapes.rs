//! Miniature reproductions of each figure's qualitative *shape* — the
//! assertions EXPERIMENTS.md relies on, kept fast enough for CI.

use stream_score::iosim::theta_estimate;
use stream_score::prelude::*;

fn mini_experiment(concurrency: u32, strategy: SpawnStrategy) -> ExperimentResult {
    Experiment {
        config: SimConfig::small_test(),
        duration_s: 2,
        concurrency,
        parallel_flows: 4,
        bytes_per_client: Bytes::from_mb(8.0),
        strategy,
        start_jitter: 0.001,
        seed: 5,
    }
    .run()
}

#[test]
fn fig2a_shape_nonlinear_growth_with_load() {
    // Worst transfer time grows faster than linearly across the load axis
    // once the link saturates (8 MB/s per client on a 125 MB/s link:
    // c=16 is 102% offered load).
    let low = mini_experiment(2, SpawnStrategy::Simultaneous);
    let high = mini_experiment(16, SpawnStrategy::Simultaneous);
    let low_worst = low.worst_transfer_time().unwrap().as_secs();
    let high_worst = high.worst_transfer_time().unwrap().as_secs();
    // 8× the load must cost much more than 8× the worst-case time is NOT
    // guaranteed in general, but well past the knee it exceeds linear.
    assert!(
        high_worst > 8.0 * low_worst,
        "non-linear growth expected: {low_worst} → {high_worst}"
    );
}

#[test]
fn fig2b_shape_scheduling_stays_flat() {
    let lo = mini_experiment(1, SpawnStrategy::Reserved);
    let hi = mini_experiment(16, SpawnStrategy::Reserved);
    let lo_worst = lo.worst_transfer_time().unwrap().as_secs();
    let hi_worst = hi.worst_transfer_time().unwrap().as_secs();
    assert!(
        hi_worst < 2.5 * lo_worst,
        "reserved slots must stay flat: {lo_worst} → {hi_worst}"
    );
}

#[test]
fn fig3_shape_long_tail_under_congestion() {
    let result = mini_experiment(16, SpawnStrategy::Simultaneous);
    let tail = result.tail().expect("transfers complete");
    // P99 well above the median: the long tail of Figure 3.
    assert!(
        tail.tail_inflation() > 1.5,
        "expected a long tail, P99/P50 = {}",
        tail.tail_inflation()
    );
    // And the worst case dominates the mean by a clear margin.
    assert!(tail.max > 1.5 * tail.mean);
}

#[test]
fn fig4_shape_streaming_vs_files() {
    let scan = FrameSource::new(144, Bytes::from_mb(8.0), TimeDelta::from_millis(33.0));
    let stream = StreamingPipeline::new(scan, presets::aps_alcf_wan()).run();
    let one = FileBasedPipeline::new(scan, 1, presets::aps_to_alcf()).run();
    let many = FileBasedPipeline::new(scan, 144, presets::aps_to_alcf()).run();

    // Ordering: streaming < aggregated file < per-frame files.
    assert!(stream.completion < one.completion);
    assert!(one.completion < many.completion);
    // The small-file penalty is severe (>2× the aggregated case).
    assert!(many.completion.as_secs() > 2.0 * one.completion.as_secs());
}

#[test]
fn fig4_theta_grows_with_file_count() {
    let scan = FrameSource::new(144, Bytes::from_mb(8.0), TimeDelta::from_millis(33.0));
    let wire = scan.total_bytes() / presets::aps_alcf_wan().bandwidth;
    let theta_1 = theta_estimate(
        FileBasedPipeline::new(scan, 1, presets::aps_to_alcf())
            .run()
            .post_acquisition_lag,
        wire,
    )
    .unwrap();
    let theta_144 = theta_estimate(
        FileBasedPipeline::new(scan, 144, presets::aps_to_alcf())
            .run()
            .post_acquisition_lag,
        wire,
    )
    .unwrap();
    assert!(theta_1.value() >= 1.0);
    assert!(
        theta_144.value() > 3.0 * theta_1.value(),
        "θ must explode with file count: {} vs {}",
        theta_1.value(),
        theta_144.value()
    );
}

#[test]
fn headline_order_of_magnitude_inflation() {
    // At heavy overload the worst-case SSS exceeds 10 — the abstract's
    // "over an order of magnitude" claim, at miniature scale.
    let result = mini_experiment(32, SpawnStrategy::Simultaneous);
    let sss = result.streaming_speed_score().unwrap();
    assert!(
        sss.value() > 10.0,
        "expected >10× inflation at 2× overload, got {}",
        sss.value()
    );
}
