//! Cross-validation: the analytic model against the packet simulator.
//!
//! The model's `T_transfer = S/(α·Bw)` should describe the simulator once
//! α is *measured from* the simulator — closing the loop the paper's
//! methodology proposes (measure transfer efficiency, then model with it).

use stream_score::prelude::*;

/// Measure the effective single-flow transfer efficiency on the small
/// test network: α = theoretical time / simulated FCT.
fn measure_alpha(mb: f64) -> f64 {
    let cfg = SimConfig::small_test();
    let mut sim = Simulator::new(cfg, 1);
    sim.add_flow(FlowSpec::new(0, Bytes::from_mb(mb), SimTime::ZERO));
    let report = sim.run();
    let fct = report.flows[0].fct().expect("completes").as_secs();
    let theoretical = (Bytes::from_mb(mb) / cfg.bottleneck.rate).as_secs();
    theoretical / fct
}

#[test]
fn alpha_improves_with_transfer_length() {
    // Slow-start amortizes: longer transfers get closer to line rate.
    let short = measure_alpha(1.0);
    let long = measure_alpha(50.0);
    assert!(long > short, "alpha long {long} vs short {short}");
    assert!(
        long > 0.8,
        "long transfers should be near line rate, got {long}"
    );
    assert!(short > 0.05 && short < 1.0);
}

#[test]
fn model_with_measured_alpha_predicts_simulated_fct() {
    let mb = 20.0;
    let alpha = measure_alpha(mb);
    let params = ModelParams::builder()
        .data_unit(Bytes::from_mb(mb))
        .intensity(ComputeIntensity::ZERO) // pure transfer
        .local_rate(FlopRate::from_tflops(1.0))
        .remote_rate(FlopRate::from_tflops(1.0))
        .bandwidth(Rate::from_gbps(1.0))
        .alpha(Ratio::new(alpha))
        .build()
        .unwrap();
    let model_t = CompletionModel::new(params).t_transfer().as_secs();

    let cfg = SimConfig::small_test();
    let mut sim = Simulator::new(cfg, 1);
    sim.add_flow(FlowSpec::new(0, Bytes::from_mb(mb), SimTime::ZERO));
    let sim_t = sim.run().flows[0].fct().unwrap().as_secs();

    // α was measured at this exact size, so the model must match ~exactly.
    assert!(
        (model_t - sim_t).abs() / sim_t < 1e-6,
        "model {model_t} vs simulated {sim_t}"
    );
}

#[test]
fn simulated_fct_never_beats_eq5_at_alpha_one() {
    // With α = 1 Eq. 5 is the physical floor; simulation must respect it.
    for mb in [1.0, 5.0, 20.0] {
        let cfg = SimConfig::small_test();
        let floor = (Bytes::from_mb(mb) / cfg.bottleneck.rate).as_secs();
        let mut sim = Simulator::new(cfg, 1);
        sim.add_flow(FlowSpec::new(0, Bytes::from_mb(mb), SimTime::ZERO));
        let fct = sim.run().flows[0].fct().unwrap().as_secs();
        assert!(fct >= floor, "{mb} MB: fct {fct} under floor {floor}");
    }
}

#[test]
fn contention_lowers_effective_alpha() {
    // Two clients sharing the bottleneck: each one's implied α drops
    // below the solo value — the mechanism behind the paper's α < 1.
    let mb = 10.0;
    let solo_alpha = measure_alpha(mb);

    let cfg = SimConfig::small_test();
    let mut sim = Simulator::new(cfg, 2);
    sim.add_flow(FlowSpec::new(0, Bytes::from_mb(mb), SimTime::ZERO));
    sim.add_flow(FlowSpec::new(1, Bytes::from_mb(mb), SimTime::ZERO));
    let report = sim.run();
    let theoretical = (Bytes::from_mb(mb) / cfg.bottleneck.rate).as_secs();
    let worst = report.worst_fct().unwrap().as_secs();
    let contended_alpha = theoretical / worst;

    assert!(
        contended_alpha < solo_alpha,
        "contended α {contended_alpha} should undercut solo α {solo_alpha}"
    );
}
