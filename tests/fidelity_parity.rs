//! The fluid fast path's differential acceptance harness.
//!
//! Replays **all** catalog scenarios under **all four** bundled trace
//! shapes through both movement integrators — the exact per-frame event
//! pipelines and the closed-form fluid fast path — and holds every cell
//! to the per-shape parity tolerances `sss-sim` exports
//! ([`fluid_tolerance`]): ≤ 1e-9 relative on steady traces, the
//! documented bounds on diurnal/bursty/outage. The same constants gate
//! the CLI's `--check` and the `sim_validation` bench, so this suite,
//! the command line, and CI all fail on the same numbers.
//!
//! Also the negative-path CLI contract for the new flags: unknown
//! `--fidelity` values and degenerate `--check` tolerances (0, NaN,
//! negative, infinite) must fail with a clear message, not a panic.

use std::process::Command;

use stream_score::loadgen::{ReplayConfig, SessionReplay};
use stream_score::prelude::*;
use stream_score::sim::{fluid_tolerance, Fidelity, TraceShape};

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stream-score"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Quick replay config: full catalog x all four shapes, small frames.
fn harness_config(fidelity: Fidelity) -> ReplayConfig {
    ReplayConfig::quick(42).with_fidelity(fidelity)
}

#[test]
fn every_catalog_cell_holds_fluid_parity_within_the_exported_tolerances() {
    let exact = SessionReplay::bundled(harness_config(Fidelity::Exact))
        .unwrap()
        .run_sequential();
    let fluid = SessionReplay::bundled(harness_config(Fidelity::Fluid))
        .unwrap()
        .run_sequential();

    let scenarios = Scenario::all().len();
    assert!(scenarios >= 13, "catalog shrank to {scenarios}");
    assert_eq!(exact.records.len(), scenarios * TraceShape::ALL.len());
    assert_eq!(exact.records.len(), fluid.records.len());

    for (e, f) in exact.records.iter().zip(&fluid.records) {
        assert_eq!((&e.scenario_id, e.shape), (&f.scenario_id, f.shape));
        let tol = fluid_tolerance(e.shape);
        // Streaming column: simulated T_pct (movement + remote compute).
        let rel = (f.sim_t_pct_s - e.sim_t_pct_s).abs() / e.sim_t_pct_s.abs().max(1e-12);
        assert!(
            rel <= tol,
            "{} under {}: fluid T_pct {} vs exact {} — rel err {rel:.3e} above {tol:.0e}",
            e.scenario_id,
            e.shape,
            f.sim_t_pct_s,
            e.sim_t_pct_s
        );
        // Staged (file-based) column: the fluid DTN arithmetic is exact
        // in every regime, so it gets the steady tolerance everywhere.
        let file_rel = (f.sim_file_completion_s - e.sim_file_completion_s).abs()
            / e.sim_file_completion_s.abs().max(1e-12);
        assert!(
            file_rel <= 1e-9,
            "{} under {}: staged fluid {} vs exact {} — rel err {file_rel:.3e}",
            e.scenario_id,
            e.shape,
            f.sim_file_completion_s,
            e.sim_file_completion_s
        );
    }
}

#[test]
fn parity_holds_at_standard_frame_counts_on_the_steady_shape() {
    // A denser frame split exercises the integrators where they differ
    // most (the exact pipeline's cost and float error both grow with
    // frames); steady keeps it fast.
    let mut config = ReplayConfig::standard(42);
    config.shapes = vec![TraceShape::Steady];
    let exact = SessionReplay::bundled(config.clone())
        .unwrap()
        .run_sequential();
    let fluid = SessionReplay::bundled(config.with_fidelity(Fidelity::Fluid))
        .unwrap()
        .run_sequential();
    for (e, f) in exact.records.iter().zip(&fluid.records) {
        let rel = (f.sim_t_pct_s - e.sim_t_pct_s).abs() / e.sim_t_pct_s.abs().max(1e-12);
        assert!(
            rel <= fluid_tolerance(TraceShape::Steady),
            "{}: rel err {rel:.3e} at 64 frames",
            e.scenario_id
        );
    }
}

#[test]
fn hybrid_matches_fluid_across_the_whole_matrix() {
    // Replay cells all satisfy the fluid-exactness gate, so Hybrid is
    // the fluid path by another name there — bit-identical reports.
    let fluid = SessionReplay::bundled(harness_config(Fidelity::Fluid))
        .unwrap()
        .run_sequential();
    let hybrid = SessionReplay::bundled(harness_config(Fidelity::Hybrid))
        .unwrap()
        .run_sequential();
    assert_eq!(fluid, hybrid);
}

#[test]
fn decisions_agree_between_fidelities_across_the_catalog() {
    // The catalog sits well off the stream/local frontier, so a
    // sub-tolerance completion nudge must never flip a verdict.
    let exact = SessionReplay::bundled(harness_config(Fidelity::Exact))
        .unwrap()
        .run_sequential();
    let fluid = SessionReplay::bundled(harness_config(Fidelity::Fluid))
        .unwrap()
        .run_sequential();
    for (e, f) in exact.records.iter().zip(&fluid.records) {
        assert_eq!(
            e.sim_decision, f.sim_decision,
            "{} under {}: decision flipped between fidelities",
            e.scenario_id, e.shape
        );
        assert_eq!(e.agree, f.agree);
    }
}

// ---- CLI surface -----------------------------------------------------

const QUICK: &[&str] = &["simulate", "--frames", "16", "--files", "4"];

#[test]
fn cli_accepts_every_fidelity_and_fluid_output_matches_exact_tables() {
    for fidelity in ["exact", "fluid", "hybrid"] {
        let mut args = QUICK.to_vec();
        args.extend_from_slice(&["--scenario", "lcls2", "--fidelity", fidelity]);
        let (ok, stdout, stderr) = run(&args);
        assert!(ok, "--fidelity {fidelity}: {stderr}");
        assert!(stdout.contains("decision agreement"), "{stdout}");
    }
}

#[test]
fn cli_check_gates_fluid_parity_on_the_library_tolerances() {
    let mut args = QUICK.to_vec();
    args.extend_from_slice(&["--fidelity", "fluid", "--check", "true"]);
    let (ok, stdout, stderr) = run(&args);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("check passed"), "{stdout}");
    assert!(stdout.contains("fluid parity passed"), "{stdout}");
}

#[test]
fn cli_rejects_unknown_fidelity_with_the_known_values_named() {
    let (ok, _, stderr) = run(&["simulate", "--fidelity", "telepathy"]);
    assert!(!ok);
    assert!(stderr.contains("unknown fidelity"), "{stderr}");
    assert!(
        stderr.contains("exact, fluid, hybrid"),
        "the error must name the valid values: {stderr}"
    );
}

#[test]
fn cli_rejects_degenerate_check_tolerances_with_a_clear_message() {
    for bad in ["0", "0.0", "NaN", "-1e-6", "inf"] {
        let (ok, _, stderr) = run(&[
            "simulate",
            "--check",
            "true",
            "--tolerance",
            bad,
            "--shapes",
            "steady",
        ]);
        assert!(!ok, "--tolerance {bad} must be rejected");
        assert!(
            stderr.contains("--tolerance must be a positive finite number"),
            "--tolerance {bad}: {stderr}"
        );
    }

    let (ok, _, stderr) = run(&["simulate", "--check", "true", "--tolerance", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("expected a number"), "{stderr}");

    // --tolerance without --check is an error, not silently ignored.
    let (ok, _, stderr) = run(&["simulate", "--tolerance", "1e-6"]);
    assert!(!ok);
    assert!(
        stderr.contains("--tolerance only affects --check"),
        "{stderr}"
    );
}

#[test]
fn cli_fluid_replay_is_bit_identical_across_worker_counts() {
    let mut one = QUICK.to_vec();
    one.extend_from_slice(&["--fidelity", "fluid", "--workers", "1"]);
    let mut eight = QUICK.to_vec();
    eight.extend_from_slice(&["--fidelity", "fluid", "--workers", "8"]);
    let (ok_a, stdout_a, _) = run(&one);
    let (ok_b, stdout_b, _) = run(&eight);
    assert!(ok_a && ok_b);
    assert_eq!(stdout_a, stdout_b, "fluid replay must be deterministic");
}
