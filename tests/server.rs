//! Integration tests for the `sss-server` decision service: endpoint
//! round-trips over a real socket, cache accounting, and response
//! byte-identity across worker counts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use stream_score::server::{Health, Server, ServerConfig, ServerHandle};

fn start(workers: usize, cache_capacity: usize) -> ServerHandle {
    let server = Server::bind(ServerConfig {
        port: 0,
        workers,
        cache_capacity,
        max_batch: 16,
        ..ServerConfig::default()
    })
    .expect("bind server");
    server.spawn()
}

/// One request over a fresh connection; returns (status, body).
fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_owned();
    (status, body)
}

const TABLE3: &str = r#"{"data_gb":2.0,"intensity_tflop_per_gb":17.0,"local_tflops":10.0,
    "remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8}"#;

fn health(addr: std::net::SocketAddr) -> Health {
    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    serde_json::from_str(&body).expect("health parses")
}

#[test]
fn endpoints_round_trip_over_a_real_socket() {
    let handle = start(2, 64);
    let addr = handle.addr();

    let (status, body) = call(addr, "POST", "/decide", TABLE3);
    assert_eq!(status, 200);
    assert!(body.contains("RemoteStream"), "{body}");
    assert!(body.contains("break_even"), "{body}");

    let tiers_body = format!(r#"{{"workload":{TABLE3},"sss":7.5}}"#);
    let (status, body) = call(addr, "POST", "/tiers", &tiers_body);
    assert_eq!(status, 200);
    assert!(body.contains("\"RealTime\""), "{body}");
    assert!(body.matches("\"feasible\"").count() == 3, "{body}");

    let (status, body) = call(addr, "GET", "/scenarios", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"count\":13"), "{body}");
    assert!(body.contains("lcls-coherent-scattering"), "{body}");

    let h = health(addr);
    assert_eq!(h.status, "ok");
    assert!(h.requests >= 4);

    handle.shutdown();
}

#[test]
fn bad_requests_get_400s_and_unknown_paths_404() {
    let handle = start(1, 16);
    let addr = handle.addr();

    let (status, body) = call(addr, "POST", "/decide", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad decide request"), "{body}");

    // Valid JSON, invalid physics: alpha out of (0, 1].
    let (status, body) = call(
        addr,
        "POST",
        "/decide",
        &TABLE3.replace("\"alpha\":0.8", "\"alpha\":1.4"),
    );
    assert_eq!(status, 400);
    assert!(body.contains("alpha"), "{body}");

    let (status, body) = call(addr, "POST", "/tiers", r#"{"workload":{},"sss":0.5}"#);
    assert_eq!(status, 400);
    assert!(!body.is_empty());

    let (status, _) = call(addr, "GET", "/no-such-endpoint", "");
    assert_eq!(status, 404);

    let (status, body) = call(addr, "GET", "/decide", "");
    assert_eq!(status, 405);
    assert!(body.contains("not allowed"), "{body}");

    // Any unsupported method on a known endpoint is 405, never 404.
    let (status, body) = call(addr, "DELETE", "/healthz", "");
    assert_eq!(status, 405);
    assert!(body.contains("not allowed"), "{body}");

    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let handle = start(2, 64);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for _ in 0..5 {
        write!(
            stream,
            "POST /decide HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            TABLE3.len(),
            TABLE3
        )
        .expect("send");
        // Read status line + headers, then the framed body.
        let mut line = String::new();
        reader.read_line(&mut line).expect("status line");
        assert!(line.starts_with("HTTP/1.1 200"), "{line}");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(v) = header.strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        assert!(String::from_utf8(body).unwrap().contains("RemoteStream"));
    }
    drop(stream);
    handle.shutdown();
}

#[test]
fn simulate_replays_a_workload_with_memoized_bodies() {
    let handle = start(2, 64);
    let addr = handle.addr();

    let body =
        format!(r#"{{"workload":{TABLE3},"shapes":["steady","outage"],"frames":16,"files":4}}"#);
    let (status, first) = call(addr, "POST", "/simulate", &body);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"records\""), "{first}");
    // Shapes serialize as their lowercase labels, so a response's shape
    // field can be echoed straight back into a follow-up request.
    assert!(
        first.contains("\"steady\"") && first.contains("\"outage\""),
        "{first}"
    );

    // The repeat is served from the body cache, byte-identically.
    let (status, second) = call(addr, "POST", "/simulate", &body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "cache hits must return the miss's bytes");
    let h = health(addr);
    // A cold key counts two misses: the initial lookup plus the
    // single-flight re-check after winning the compute claim (the same
    // accounting /frontier uses).
    assert_eq!(h.simulate_cache.misses, 2);
    assert_eq!(h.simulate_cache.hits, 1);
    assert_eq!(h.simulate_cache.entries, 1);

    // Bad shape names and oversized grids are 400s, not panics.
    let bad = format!(r#"{{"workload":{TABLE3},"shapes":["tsunami"]}}"#);
    let (status, body) = call(addr, "POST", "/simulate", &bad);
    assert_eq!(status, 400);
    assert!(body.contains("unknown trace shape"), "{body}");
    let oversized = format!(r#"{{"workload":{TABLE3},"frames":100000}}"#);
    let (status, body) = call(addr, "POST", "/simulate", &oversized);
    assert_eq!(status, 400);
    assert!(body.contains("cap"), "{body}");

    // Unsupported methods are 405, never 404.
    let (status, _) = call(addr, "GET", "/simulate", "");
    assert_eq!(status, 405);

    handle.shutdown();
}

#[test]
fn cache_accounts_hits_and_misses() {
    let handle = start(2, 256);
    let addr = handle.addr();

    for _ in 0..5 {
        let (status, _) = call(addr, "POST", "/decide", TABLE3);
        assert_eq!(status, 200);
    }
    let h = health(addr);
    assert_eq!(h.cache.misses, 1, "one distinct workload evaluates once");
    assert_eq!(h.cache.hits, 4);
    assert_eq!(h.cache.entries, 1);

    // A sub-precision perturbation quantizes onto the same entry...
    let noisy = TABLE3.replace("\"alpha\":0.8", "\"alpha\":0.8000000000001");
    let (status, _) = call(addr, "POST", "/decide", &noisy);
    assert_eq!(status, 200);
    let h = health(addr);
    assert_eq!((h.cache.misses, h.cache.hits), (1, 5));

    // ...while a meaningful change is a new entry.
    let changed = TABLE3.replace("\"alpha\":0.8", "\"alpha\":0.7");
    let (status, _) = call(addr, "POST", "/decide", &changed);
    assert_eq!(status, 200);
    let h = health(addr);
    assert_eq!((h.cache.misses, h.cache.entries), (2, 2));

    handle.shutdown();
}

#[test]
fn disabled_cache_never_hits() {
    let handle = start(2, 0);
    let addr = handle.addr();
    for _ in 0..3 {
        let (status, _) = call(addr, "POST", "/decide", TABLE3);
        assert_eq!(status, 200);
    }
    let h = health(addr);
    assert_eq!(h.cache.hits, 0);
    assert_eq!(h.cache.misses, 3);
    assert_eq!(h.cache.entries, 0);
    handle.shutdown();
}

#[test]
fn http_load_driver_round_trips() {
    let handle = start(4, 1024);
    let spec = stream_score::loadgen::HttpLoadSpec {
        addr: handle.addr().to_string(),
        clients: 3,
        requests_per_client: 20,
        distinct_workloads: 5,
        seed: 7,
    };
    let report = stream_score::loadgen::run_http_load(&spec).expect("load run");
    assert_eq!(report.ok, 60);
    assert_eq!(report.errors, 0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.max >= report.latency.p50);

    let h = health(handle.addr());
    // At least one miss per distinct workload. Concurrent clients can race
    // the same key into a single dispatcher wave before its first insert —
    // the batcher documents that duplicates within a wave evaluate (and
    // count) redundantly — so each of the 5 keys may miss up to once per
    // client, never more.
    assert!(
        (5..=15).contains(&h.cache.misses),
        "expected ~one miss per distinct workload, got {}",
        h.cache.misses
    );
    assert_eq!(h.cache.hits + h.cache.misses, 60);
    assert!(h.cache.hits >= 45, "repeats must overwhelmingly hit");
    handle.shutdown();
}

/// The same request sequence against `--workers 1` and `--workers 8`
/// servers must produce byte-identical bodies, cached or not.
#[test]
fn responses_identical_across_worker_counts() {
    let bodies: Vec<String> = {
        let spec = stream_score::loadgen::HttpLoadSpec::smoke("unused");
        spec.workloads()
            .iter()
            .map(|p| {
                let req = stream_score::server::DecideRequest::from_params(p);
                serde_json::to_string(&req).expect("body serializes")
            })
            .collect()
    };

    let run = |workers: usize, cache_capacity: usize| -> Vec<String> {
        let handle = start(workers, cache_capacity);
        let addr = handle.addr();
        // Each body twice: cold then cached.
        let out = bodies
            .iter()
            .chain(bodies.iter())
            .map(|b| {
                let (status, body) = call(addr, "POST", "/decide", b);
                assert_eq!(status, 200);
                body
            })
            .collect();
        handle.shutdown();
        out
    };

    let one = run(1, 256);
    let eight = run(8, 256);
    let uncached = run(8, 0);
    assert_eq!(one, eight, "worker count must not change a byte");
    assert_eq!(one, uncached, "cache hits must return the miss's bytes");
    let n = bodies.len();
    assert_eq!(one[..n], one[n..], "repeat queries identical to first");
}

/// The `/healthz` counter block must be byte-stable across fresh server
/// instances given the same request sequence: the decision cache shards
/// over `HashMap`s, and if hash-iteration order ever leaked into the
/// serialized `CacheStats` (entry counts, hit/miss accounting), two
/// identical runs would disagree here.
#[test]
fn healthz_cache_stats_are_byte_stable_across_runs() {
    let run = || -> String {
        let handle = start(2, 64);
        let addr = handle.addr();
        // Populate several shards, with repeats for hits, sequentially so
        // batch counters are deterministic too.
        for i in 0..6 {
            let alpha = 0.5 + 0.05 * f64::from(i);
            let body = format!(
                r#"{{"data_gb":2.0,"intensity_tflop_per_gb":17.0,"local_tflops":10.0,
                    "remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":{alpha}}}"#
            );
            for _ in 0..2 {
                let (status, _) = call(addr, "POST", "/decide", &body);
                assert_eq!(status, 200);
            }
        }
        let (status, body) = call(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        handle.shutdown();
        // Everything from the cache counters onward; the prefix holds the
        // wall-clock uptime, which legitimately differs.
        let at = body.find("\"cache\":").expect("cache block present");
        body[at..].to_owned()
    };
    assert_eq!(run(), run(), "cache-stats bytes drifted between runs");
}
