//! Differential tests between the two server front ends.
//!
//! The reactor front end exists for scale, not for behavior: every
//! response it produces must be byte-identical to what the blocking
//! thread-per-connection front end writes for the same request. These
//! tests pin that equivalence across all four POST routes, the GET
//! routes, and the error paths, then exercise the reactor-only machinery
//! (pipelining, split reads, oversized-header rejection, idle timeouts,
//! the connection cap, and shutdown promptness) that the shared
//! integration suite cannot reach through the blocking code path.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use stream_score::server::{Frontend, Server, ServerConfig, ServerHandle};

const TABLE3: &str = r#"{"data_gb":2.0,"intensity_tflop_per_gb":17.0,"local_tflops":10.0,
    "remote_tflops":340.0,"bandwidth_gbps":25.0,"alpha":0.8}"#;

fn start_with(frontend: Frontend, tweak: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig {
        port: 0,
        workers: 2,
        cache_capacity: 64,
        max_batch: 8,
        frontend,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    Server::bind(config).expect("bind server").spawn()
}

fn start(frontend: Frontend) -> ServerHandle {
    start_with(frontend, |_| {})
}

/// One request over a fresh connection; returns the complete raw
/// response (status line, headers, and body) exactly as it hit the wire.
fn call_raw(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// The fixed request mix the differential test replays against both
/// front ends: all four POST routes (valid and invalid bodies), both GET
/// routes' routing errors, unknown paths, and malformed JSON.
fn request_mix() -> Vec<(&'static str, &'static str, String)> {
    let tiers = format!(r#"{{"workload":{TABLE3},"sss":7.5}}"#);
    let frontier = format!(
        r#"{{"workload":{TABLE3},"x":"wan_gbps:1:100","y":"data_tb:0.1:10","resolution":8}}"#
    );
    let simulate =
        format!(r#"{{"workload":{TABLE3},"shapes":["steady","outage"],"frames":16,"files":4}}"#);
    vec![
        ("POST", "/decide", TABLE3.to_owned()),
        ("POST", "/tiers", tiers),
        ("POST", "/frontier", frontier),
        ("POST", "/simulate", simulate),
        // Repeat of the first body: exercises the cache-hit path too.
        ("POST", "/decide", TABLE3.to_owned()),
        ("GET", "/scenarios", String::new()),
        // Error paths must match byte-for-byte as well.
        ("POST", "/decide", "not json".to_owned()),
        (
            "POST",
            "/decide",
            TABLE3.replace("\"alpha\":0.8", "\"alpha\":1.4"),
        ),
        ("GET", "/no-such-endpoint", String::new()),
        ("GET", "/decide", String::new()),
        ("DELETE", "/healthz", String::new()),
    ]
}

/// The tentpole invariant: the reactor and the threaded front end answer
/// the same request mix with byte-identical raw responses — status line,
/// headers, and body — across every route and error path.
#[cfg(target_os = "linux")]
#[test]
fn responses_byte_identical_across_frontends() {
    let mix = request_mix();
    let run = |frontend: Frontend| -> Vec<String> {
        let handle = start(frontend);
        let out = mix
            .iter()
            .map(|(method, path, body)| call_raw(handle.addr(), method, path, body))
            .collect();
        handle.shutdown();
        out
    };
    let threaded = run(Frontend::Threaded);
    let reactor = run(Frontend::Reactor);
    for (i, (t, r)) in threaded.iter().zip(&reactor).enumerate() {
        let (method, path, _) = &mix[i];
        assert_eq!(t, r, "front ends disagree on request {i} ({method} {path})");
    }
}

/// `/healthz` reports which front end is serving and how many
/// connections it currently holds.
#[cfg(target_os = "linux")]
#[test]
fn healthz_names_the_frontend_and_counts_connections() {
    for (frontend, name) in [
        (Frontend::Reactor, "reactor"),
        (Frontend::Threaded, "threaded"),
    ] {
        let handle = start(frontend);
        let raw = call_raw(handle.addr(), "GET", "/healthz", "");
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or_default();
        let health: stream_score::server::Health =
            serde_json::from_str(body).expect("health parses");
        assert_eq!(health.frontend, name);
        // The probing connection itself is open while the body renders.
        assert!(health.open_connections >= 1, "{}", health.open_connections);
        handle.shutdown();
    }
}

/// Several requests written back-to-back in one TCP segment come back as
/// the same number of responses, in order (HTTP/1.1 pipelining).
#[cfg(target_os = "linux")]
#[test]
fn pipelined_requests_answered_in_order() {
    let handle = start(Frontend::Reactor);
    let reference = call_raw(handle.addr(), "POST", "/decide", TABLE3);
    let reference_body = reference.split("\r\n\r\n").nth(1).expect("body");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let one = format!(
        "POST /decide HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        TABLE3.len(),
        TABLE3
    );
    let last = format!(
        "POST /decide HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        TABLE3.len(),
        TABLE3
    );
    // Three requests in a single write: two keep-alive, one closing.
    let wire = format!("{one}{one}{last}");
    stream.write_all(wire.as_bytes()).expect("send pipeline");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read all");

    let statuses = response.matches("HTTP/1.1 200 OK").count();
    assert_eq!(statuses, 3, "{response}");
    assert_eq!(
        response.matches(reference_body).count(),
        3,
        "pipelined bodies must equal the fresh-connection body"
    );
    handle.shutdown();
}

/// A request trickled over the socket a few bytes at a time — split
/// mid-status-line, mid-header, and mid-body — still parses into the
/// same response.
#[cfg(target_os = "linux")]
#[test]
fn split_writes_reassemble() {
    let handle = start(Frontend::Reactor);
    let reference = call_raw(handle.addr(), "POST", "/decide", TABLE3);

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let wire = format!(
        "POST /decide HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        TABLE3.len(),
        TABLE3
    );
    // 7-byte chunks with small pauses guarantee the reactor sees the
    // request in many reads, with every boundary class exercised.
    for chunk in wire.as_bytes().chunks(7) {
        stream.write_all(chunk).expect("send chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert_eq!(response, reference);
    handle.shutdown();
}

/// A header line past the parser's limit draws `431 Request Header
/// Fields Too Large` — from both front ends, byte-identically.
#[cfg(target_os = "linux")]
#[test]
fn oversized_header_draws_431_from_both_frontends() {
    let run = |frontend: Frontend| -> String {
        let handle = start(frontend);
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let huge = "x".repeat(16 * 1024);
        write!(
            stream,
            "POST /decide HTTP/1.1\r\nx-padding: {huge}\r\ncontent-length: 0\r\n\r\n"
        )
        .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        handle.shutdown();
        response
    };
    let threaded = run(Frontend::Threaded);
    let reactor = run(Frontend::Reactor);
    assert!(threaded.starts_with("HTTP/1.1 431"), "{threaded}");
    assert_eq!(threaded, reactor);
}

/// Garbage on the wire draws a `400` and a teardown, not a hang.
#[cfg(target_os = "linux")]
#[test]
fn malformed_request_draws_400_and_teardown() {
    let handle = start(Frontend::Reactor);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"not http at all\r\n\r\n").expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    handle.shutdown();
}

/// Regression for the stop-flag latch: a freshly started reactor with
/// zero clients must observe `shutdown()` within a couple of epoll
/// ticks, not hang in `epoll_wait` until a connection happens by.
#[cfg(target_os = "linux")]
#[test]
fn shutdown_is_prompt_with_no_clients() {
    for frontend in [Frontend::Reactor, Frontend::Threaded] {
        let handle = start(frontend);
        #[allow(clippy::disallowed_methods)]
        // sss-lint: allow(D002, test wall-clock measures shutdown promptness, never sim state)
        let begun = Instant::now();
        handle.shutdown();
        let took = begun.elapsed();
        assert!(
            took < Duration::from_secs(2),
            "{frontend} shutdown took {took:?}"
        );
    }
}

/// Idle connections are retired after `idle_timeout_ticks` quiet epoll
/// ticks — the reactor's wall-clock-free idle timeout.
#[cfg(target_os = "linux")]
#[test]
fn idle_connections_time_out() {
    let handle = start_with(Frontend::Reactor, |config| {
        config.tick_ms = 10;
        config.idle_timeout_ticks = 5;
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Send nothing. The server must close the socket on its own.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("EOF, not a read timeout");
    assert_eq!(n, 0, "expected server-side close of the idle connection");
    handle.shutdown();
}

/// Connections beyond `max_connections` are dropped at accept while the
/// ones inside the cap keep working.
#[cfg(target_os = "linux")]
#[test]
fn connections_beyond_cap_are_dropped() {
    let handle = start_with(Frontend::Reactor, |config| {
        config.max_connections = 2;
    });
    let keep_a = TcpStream::connect(handle.addr()).expect("connect");
    let keep_b = TcpStream::connect(handle.addr()).expect("connect");
    // Give the reactor a beat to accept (and count) the first two.
    std::thread::sleep(Duration::from_millis(100));

    let mut over = TcpStream::connect(handle.addr()).expect("connect (backlog)");
    over.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    // The over-cap socket is closed without a byte; a reset is equally
    // acceptable — what matters is that no response ever arrives.
    match over.read(&mut buf) {
        Ok(n) => assert_eq!(n, 0, "over-cap connection must not be served"),
        Err(e) => assert_ne!(
            e.kind(),
            std::io::ErrorKind::WouldBlock,
            "over-cap connection must be closed, not left hanging: {e}"
        ),
    }

    // The in-cap connections still serve requests.
    for stream in [keep_a, keep_b] {
        let mut stream = stream;
        write!(
            stream,
            "POST /decide HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
            TABLE3.len(),
            TABLE3
        )
        .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    }
    handle.shutdown();
}

/// The connection-ramp client holds a four-digit connection set open
/// against the reactor from one process, with every request answered.
/// (The full ≥5k ramp runs in the `server_scaling` bench; this keeps the
/// test suite fast while still proving the mechanism end to end.)
#[cfg(target_os = "linux")]
#[test]
fn ramp_holds_a_thousand_connections() {
    let handle = start_with(Frontend::Reactor, |config| {
        config.cache_capacity = 4096;
    });
    let spec = stream_score::loadgen::ConnRampSpec {
        addr: handle.addr().to_string(),
        connections: 1000,
        requests_per_conn: 2,
        distinct_workloads: 8,
        seed: 42,
    };
    let report = stream_score::loadgen::run_conn_ramp(&spec).expect("ramp run");
    handle.shutdown();
    assert_eq!(report.opened, 1000, "reactor must accept the whole set");
    assert_eq!(report.completed, 1000);
    assert_eq!(report.ok, 2000);
    assert_eq!(report.errors, 0);
    assert!(report.latency.p99 >= report.latency.p50);
}
