//! End-to-end integration: measurement → congestion curve → model →
//! decision, across crate boundaries, at test-friendly scale.

use stream_score::core::congestion::CongestionCurve;
use stream_score::prelude::*;

/// A miniature Figure 2(a)-style sweep on the small test network.
fn mini_sweep(strategy: SpawnStrategy) -> Vec<stream_score::loadgen::SweepPoint> {
    let spec = SweepSpec {
        config: SimConfig::small_test(),
        duration_s: 2,
        concurrency: vec![1, 4, 8],
        parallel_flows: vec![4],
        bytes_per_client: Bytes::from_mb(8.0),
        strategy,
        start_jitter: 0.001,
        repeats: 1,
        seed: 77,
    };
    sweep(&spec, 2)
}

#[test]
fn measured_curve_feeds_tier_analysis() {
    // Measure congestion on the simulated network.
    let points = mini_sweep(SpawnStrategy::Simultaneous);
    let curve =
        CongestionCurve::from_points(points.iter().map(|p| (p.utilization, p.sss())).collect())
            .expect("sweep yields curve");

    // Apply it to a workload on the same class of link.
    let params = ModelParams::builder()
        .data_unit(Bytes::from_mb(50.0))
        .intensity(ComputeIntensity::from_tflop_per_gb(17.0))
        .local_rate(FlopRate::from_tflops(10.0))
        .remote_rate(FlopRate::from_tflops(340.0))
        .bandwidth(Rate::from_gbps(1.0))
        .alpha(Ratio::new(0.8))
        .build()
        .unwrap();
    let util =
        params.required_stream_rate().as_bytes_per_sec() / params.bandwidth.as_bytes_per_sec();
    let sss = curve.sss_at(util);
    assert!(sss.value() >= 1.0);

    let report = TierReport::evaluate(&params, sss, Tier::NearRealTime).unwrap();
    // The pipeline must produce an internally-consistent report.
    assert!(report.worst_transfer.as_secs() > 0.0);
    assert_eq!(
        report.feasible,
        report.worst_t_pct.as_secs() <= 10.0,
        "feasibility flag must match the budget comparison"
    );
}

#[test]
fn congestion_monotonically_degrades_worst_case() {
    let points = mini_sweep(SpawnStrategy::Simultaneous);
    // Higher concurrency cells must not have smaller worst-case times
    // than the singleton cell (they contain strictly more contention).
    let lone = points.iter().find(|p| p.concurrency == 1).unwrap();
    let crowd = points.iter().find(|p| p.concurrency == 8).unwrap();
    assert!(
        crowd.worst_transfer_s > lone.worst_transfer_s,
        "8-way batch {} should beat solo {}",
        crowd.worst_transfer_s,
        lone.worst_transfer_s
    );
}

#[test]
fn reserved_scheduling_tames_the_tail() {
    let batch = mini_sweep(SpawnStrategy::Simultaneous);
    let reserved = mini_sweep(SpawnStrategy::Reserved);
    let batch_worst = batch.iter().map(|p| p.worst_transfer_s).fold(0.0, f64::max);
    let reserved_worst = reserved
        .iter()
        .map(|p| p.worst_transfer_s)
        .fold(0.0, f64::max);
    assert!(
        reserved_worst < batch_worst,
        "reserved {reserved_worst} must beat simultaneous {batch_worst}"
    );
}

#[test]
fn paper_scenarios_decide_sanely() {
    // Table 3 row 2 is the canonical infeasibility example.
    let liquid = Scenario::by_id("lcls-liquid-scattering").unwrap();
    assert_eq!(decide(&liquid.params).decision, Decision::Infeasible);

    // Coherent scattering streams happily with a 34× remote machine.
    let coherent = Scenario::by_id("lcls-coherent-scattering").unwrap();
    let verdict = decide(&coherent.params);
    assert_eq!(verdict.decision, Decision::RemoteStream);
    assert!(verdict.gain.value() > 1.0);

    // LHC raw rates stay local, by a huge margin.
    let lhc = Scenario::by_id("lhc-raw-trigger").unwrap();
    assert_eq!(decide(&lhc.params).decision, Decision::Infeasible);
}

#[test]
fn streaming_speed_score_roundtrip() {
    // Build an SSS from a mini-sweep worst case and check the model's
    // worst-case T_pct uses it coherently.
    let points = mini_sweep(SpawnStrategy::Simultaneous);
    let worst = points
        .iter()
        .map(|p| p.worst_transfer_s)
        .fold(0.0, f64::max);
    let sss = StreamingSpeedScore::from_measurement(
        TimeDelta::from_secs(worst),
        Bytes::from_mb(8.0),
        Rate::from_gbps(1.0),
    )
    .expect("worst >= theoretical");
    assert!(sss.score().value() >= 1.0);

    let params = ModelParams::builder()
        .data_unit(Bytes::from_mb(8.0))
        .intensity(ComputeIntensity::from_tflop_per_gb(1.0))
        .local_rate(FlopRate::from_tflops(1.0))
        .remote_rate(FlopRate::from_tflops(10.0))
        .bandwidth(Rate::from_gbps(1.0))
        .alpha(Ratio::new(0.9))
        .build()
        .unwrap();
    let m = CompletionModel::new(params);
    let worst_pct = m.t_pct_worst_case(sss.score());
    // Worst case must dominate the average case whenever SSS ≥ 1/α.
    assert!(worst_pct.as_secs() >= m.t_pct().as_secs() * 0.9);
}
