//! Reproducibility guarantees across the whole stack: identical seeds
//! yield identical results regardless of thread count; different seeds
//! genuinely differ.

use stream_score::prelude::*;

fn spec(seed: u64) -> SweepSpec {
    SweepSpec {
        config: SimConfig::small_test(),
        duration_s: 2,
        concurrency: vec![2, 6],
        parallel_flows: vec![2, 4],
        bytes_per_client: Bytes::from_mb(4.0),
        strategy: SpawnStrategy::Simultaneous,
        start_jitter: 0.002,
        repeats: 2,
        seed,
    }
}

#[test]
fn sweep_identical_across_worker_counts() {
    let a = sweep(&spec(11), 1);
    let b = sweep(&spec(11), 4);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.concurrency, y.concurrency);
        assert_eq!(x.parallel_flows, y.parallel_flows);
        assert_eq!(
            x.samples, y.samples,
            "per-transfer times must be bit-identical"
        );
        assert_eq!(x.worst_transfer_s, y.worst_transfer_s);
        assert_eq!(x.utilization, y.utilization);
    }
}

#[test]
fn different_seeds_differ() {
    let a = sweep(&spec(11), 2);
    let b = sweep(&spec(12), 2);
    // Jitter differs → at least one cell's samples differ.
    let any_diff = a.iter().zip(&b).any(|(x, y)| x.samples != y.samples);
    assert!(any_diff, "distinct seeds should perturb transfer times");
}

#[test]
fn simulator_runs_are_pure() {
    let run = || {
        let mut sim = Simulator::new(SimConfig::small_test(), 4);
        for c in 0..4 {
            sim.add_flow(FlowSpec::new(
                c,
                Bytes::from_mb(3.0),
                SimTime::from_millis(c as u64 * 100),
            ));
        }
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.flows, b.flows);
    assert_eq!(a.events, b.events);
    assert_eq!(a.bottleneck, b.bottleneck);
    assert_eq!(a.delivered, b.delivered);
}

#[test]
fn monte_carlo_and_bootstrap_are_seeded() {
    use stream_score::core::montecarlo::{MonteCarloOutcome, TransferEfficiencyDistribution};
    use stream_score::stats::bootstrap_ci;

    let params = ModelParams::builder()
        .data_unit(Bytes::from_gb(1.0))
        .intensity(ComputeIntensity::from_tflop_per_gb(5.0))
        .local_rate(FlopRate::from_tflops(10.0))
        .remote_rate(FlopRate::from_tflops(50.0))
        .bandwidth(Rate::from_gbps(25.0))
        .alpha(Ratio::new(0.7))
        .build()
        .unwrap();
    let d = TransferEfficiencyDistribution::Uniform { lo: 0.3, hi: 0.9 };
    assert_eq!(
        MonteCarloOutcome::run(&params, d, 1000, 99),
        MonteCarloOutcome::run(&params, d, 1000, 99)
    );

    let xs: Vec<f64> = (0..100).map(|i| (i % 13) as f64).collect();
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    assert_eq!(
        bootstrap_ci(&xs, mean, 0.95, 300, 5),
        bootstrap_ci(&xs, mean, 0.95, 300, 5)
    );
}
