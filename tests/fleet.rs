//! End-to-end gates for the multi-tenant fleet simulator: CLI
//! round-trips in every output format, byte-identity across worker
//! counts and repeated seeds, the `--check` differential smoke against
//! the counterpart movement integrator, the shared `--seed` flag-error
//! contract, and the `POST /fleet` endpoint with its memoized body
//! cache surfaced in `/healthz`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::Command;

use stream_score::server::{Health, Server, ServerConfig, ServerHandle};

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stream-score"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A small fleet that still exercises contention: the full catalog at
/// load 6 over a 40 Gbps backbone with 3 DTN slots.
const QUICK: &[&str] = &[
    "fleet",
    "--sessions",
    "13",
    "--load",
    "6",
    "--wan",
    "40Gbps",
    "--slots",
    "3",
    "--seed",
    "7",
];

fn quick<'a>(extra: &'a [&'a str]) -> Vec<&'a str> {
    QUICK.iter().chain(extra).copied().collect()
}

#[test]
fn fleet_round_trips_in_every_format() {
    let (ok, text, _) = run(QUICK);
    assert!(ok);
    assert!(text.contains("mispredict rate"), "{text}");
    assert!(text.contains("makespan"), "{text}");

    let (ok, md, _) = run(&quick(&["--format", "md"]));
    assert!(ok);
    assert!(md.contains('|'), "markdown tables expected: {md}");

    let (ok, csv, _) = run(&quick(&["--format", "csv"]));
    assert!(ok);
    let mut lines = csv.lines();
    let header = lines.next().expect("csv header");
    assert!(
        header.starts_with("load,trace,policy,session,scenario"),
        "{header}"
    );
    assert_eq!(lines.count(), 13, "one row per session");
}

#[test]
fn fleet_csv_is_byte_identical_across_workers_and_reruns() {
    let base = quick(&["--format", "csv"]);
    let (ok, one, _) = run(&[&base[..], &["--workers", "1"]].concat());
    assert!(ok);
    let (ok, eight, _) = run(&[&base[..], &["--workers", "8"]].concat());
    assert!(ok);
    let (ok, sequential, _) = run(&[&base[..], &["--mode", "sequential"]].concat());
    assert!(ok);
    let (ok, again, _) = run(&[&base[..], &["--workers", "8"]].concat());
    assert!(ok);
    assert_eq!(one, eight, "worker count must not change a byte");
    assert_eq!(one, sequential, "parallel and sequential runs must agree");
    assert_eq!(eight, again, "same seed must reproduce the same bytes");
}

#[test]
fn fleet_check_holds_fluid_against_exact() {
    let (ok, text, stderr) = run(&quick(&["--check", "true"]));
    assert!(ok, "{stderr}");
    assert!(text.contains("check passed"), "{text}");

    // And from the exact side: same gate, integrators swapped.
    let (ok, text, stderr) = run(&quick(&["--fidelity", "exact", "--check", "true"]));
    assert!(ok, "{stderr}");
    assert!(text.contains("check passed"), "{text}");
}

#[test]
fn fleet_rejects_bad_flags_with_the_shared_message() {
    let (ok, _, stderr) = run(&["fleet", "--seed", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("bad --seed \"abc\""), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--load", "plenty"]);
    assert!(!ok);
    assert!(stderr.contains("bad --load \"plenty\""), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--policy", "anarchy"]);
    assert!(!ok);
    assert!(stderr.contains("anarchy"), "{stderr}");

    let (ok, _, stderr) = run(&["fleet", "--sessions", "4", "--load", "-1"]);
    assert!(!ok);
    assert!(stderr.contains("load"), "{stderr}");

    let (ok, _, stderr) = run(&quick(&["--mode", "sequential", "--workers", "2"]));
    assert!(!ok);
    assert!(stderr.contains("conflicts"), "{stderr}");
}

#[test]
fn fleet_single_scenario_filter_runs() {
    let (ok, csv, stderr) = run(&[
        "fleet",
        "--scenario",
        "lcls-coherent-scattering",
        "--sessions",
        "4",
        "--seed",
        "3",
        "--format",
        "csv",
    ]);
    assert!(ok, "{stderr}");
    for line in csv.lines().skip(1) {
        assert!(line.contains("lcls-coherent-scattering"), "{line}");
    }
}

// ---------------------------------------------------------------------
// POST /fleet over a real socket.
// ---------------------------------------------------------------------

fn start(workers: usize) -> ServerHandle {
    let server = Server::bind(ServerConfig {
        port: 0,
        workers,
        cache_capacity: 64,
        max_batch: 16,
        ..ServerConfig::default()
    })
    .expect("bind server");
    server.spawn()
}

fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .unwrap_or_default()
        .to_owned();
    (status, body)
}

#[test]
fn fleet_endpoint_round_trips_with_memoized_bodies() {
    let handle = start(2);
    let addr = handle.addr();

    let body = r#"{"sessions":13,"load":6.0,"wan_gbps":40.0,"slots":3,"seed":7}"#;
    let (status, first) = call(addr, "POST", "/fleet", body);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"records\""), "{first}");
    assert!(first.contains("\"scenarios\""), "{first}");
    assert!(first.contains("\"makespan_s\""), "{first}");

    // The repeat is served from the fleet body cache, byte-identically.
    let (status, second) = call(addr, "POST", "/fleet", body);
    assert_eq!(status, 200);
    assert_eq!(first, second, "cache hits must return the miss's bytes");

    let (status, health) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let h: Health = serde_json::from_str(&health).expect("health parses");
    // A cold key counts two misses: the initial lookup plus the
    // single-flight re-check after winning the compute claim.
    assert_eq!(h.fleet_cache.misses, 2);
    assert_eq!(h.fleet_cache.hits, 1);
    assert_eq!(h.fleet_cache.entries, 1);

    handle.shutdown();
}

#[test]
fn fleet_endpoint_rejects_bad_requests() {
    let handle = start(1);
    let addr = handle.addr();

    let (status, body) = call(addr, "POST", "/fleet", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("bad fleet request"), "{body}");

    let (status, body) = call(addr, "POST", "/fleet", r#"{"policy":"anarchy"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("anarchy"), "{body}");

    let (status, body) = call(addr, "POST", "/fleet", r#"{"shape":"tsunami"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("tsunami"), "{body}");

    let (status, body) = call(addr, "POST", "/fleet", r#"{"wan_gbps":-1.0}"#);
    assert_eq!(status, 400);
    assert!(!body.is_empty());

    // Oversized fleets are capped with a clear message, not a hang.
    let (status, body) = call(addr, "POST", "/fleet", r#"{"sessions":100000}"#);
    assert_eq!(status, 400);
    assert!(body.contains("cap"), "{body}");

    // Unsupported methods are 405, never 404.
    let (status, body) = call(addr, "GET", "/fleet", "");
    assert_eq!(status, 405);
    assert!(body.contains("not allowed"), "{body}");

    handle.shutdown();
}

/// The session cap is a service knob, not a constant: a server sized
/// with a smaller `fleet_session_cap` rejects fleets right above it,
/// serves fleets right at it, and reports the configured value on
/// `/healthz`.
#[test]
fn fleet_session_cap_is_configurable_and_reported() {
    let server = Server::bind(ServerConfig {
        port: 0,
        workers: 1,
        cache_capacity: 64,
        max_batch: 16,
        fleet_session_cap: 8,
        ..ServerConfig::default()
    })
    .expect("bind server");
    let handle = server.spawn();
    let addr = handle.addr();

    let (status, body) = call(addr, "POST", "/fleet", r#"{"sessions":9}"#);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("cap") && body.contains('8'), "{body}");

    let (status, body) = call(addr, "POST", "/fleet", r#"{"sessions":8,"load":2.0}"#);
    assert_eq!(status, 200, "{body}");

    let (status, health) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let h: Health = serde_json::from_str(&health).expect("health parses");
    assert_eq!(h.fleet_session_cap, 8);

    handle.shutdown();
}

/// The served fleet bytes are independent of the server's worker count:
/// the fleet engine position-seeds every stream, so `--workers 1` and
/// `--workers 8` servers answer the same request identically.
#[test]
fn fleet_endpoint_bytes_identical_across_worker_counts() {
    let body = r#"{"sessions":8,"load":4.0,"policy":"priority","seed":11}"#;
    let serve = |workers: usize| -> String {
        let handle = start(workers);
        let (status, response) = call(handle.addr(), "POST", "/fleet", body);
        assert_eq!(status, 200, "{response}");
        handle.shutdown();
        response
    };
    assert_eq!(serve(1), serve(8), "worker count must not change a byte");
}
